//! Online shard rebalancing: background range migration between adjacent
//! shards.
//!
//! A [`crate::ShardedWormhole`]'s boundaries are chosen at construction;
//! under a workload whose hot range *shifts* (the Zipfian churn the
//! paper's evaluation highlights), a static partition degenerates — one
//! shard absorbs all writes and the front behaves like the unsharded
//! writer mutex it exists to remove. The machinery here moves a boundary
//! **while the index serves traffic**, without blocking readers or
//! writers outside the migrating range.
//!
//! # The migration protocol
//!
//! Moving the boundary between shards `pair` and `pair + 1` from `cur` to
//! `target` re-homes the half-open key range between them. The move runs
//! in **bounded batches** (at most [`RebalanceConfig::batch_keys`]-ish
//! keys each, planned from a one-pass cursor scan of the donor's range).
//!
//! Before its first publication the migration executes a **draining
//! barrier** (`wh_epoch::Qsbr::drain_barrier`): it revokes the
//! migration-idle bias that lets point ops route *outside* any critical
//! section, waits until every in-flight biased fast section has exited,
//! and forces a grace period for classic sections. From then until the
//! migration completes, every point op re-enters in slow-path mode
//! (classic critical sections), so the per-batch grace periods below
//! cover all of them; the bias — and with it the fast path — is restored
//! when the migration finishes (normally or by unwinding).
//!
//! Each batch then executes four steps against the epoch-published
//! router table (see `crate::index::RouterTable`):
//!
//! 1. **Freeze.** Publish a router with the batch's range marked
//!    write-frozen (boundaries unchanged) and complete an asynchronous
//!    grace period on the router's QSBR domain. Point ops route inside
//!    read-side critical sections of that domain, so after the grace
//!    period every write that routed *before* the freeze has finished:
//!    the batch range is now immutable in the donor. New writes to the
//!    range wait (bounded: one copy + one grace period); reads, and every
//!    op outside the range, proceed untouched.
//! 2. **Copy.** Stream the frozen range out of the donor through a
//!    [`index_traits::Cursor`] and insert each pair into the recipient.
//!    The copies are not yet reachable — the range still routes to the
//!    donor — so readers never observe a half-copied range.
//! 3. **Publish.** Swap in a router with the batch's new boundary (and no
//!    freeze), then complete another async grace period. From this epoch
//!    on, every op routes the range to the recipient; the grace period
//!    guarantees no in-flight read or scan batch is still resolving it
//!    against the donor.
//! 4. **Drain.** Bulk-remove the range from the donor
//!    ([`wormhole::Wormhole::remove_range`], which reuses the merge
//!    engine to shrink the donor's structure as it empties).
//!
//! A racing writer therefore lands in **exactly one shard**: before the
//! freeze it lands in the donor (and is copied in step 2); during the
//! freeze it waits; after the publish it routes to the recipient. A
//! cross-shard scan validates its segment's router epoch on every batch
//! fill and re-routes through the new boundaries when it moved
//! (`crate::index`'s `RoutedSource`), so cursors stay globally ordered
//! and resumable across a migration.
//!
//! Both grace periods use the same start-early/wait-late pattern as the
//! Wormhole's split/merge publication; [`MigrationReport`] counts how
//! often the wait was already free (`grace_waits_free`).
//!
//! # The rebalancer
//!
//! [`crate::ShardedWormhole::maybe_rebalance`] is the cheap policy entry
//! point, designed to be called periodically from any thread (a
//! background ticker, or piggybacked on maintenance work). It reads the
//! per-shard op counters, and when an adjacent pair's load ratio exceeds
//! [`RebalanceConfig::imbalance_percent`], picks a new boundary from a
//! stride sample of the hot shard's live keys (via the cursor API and
//! [`crate::config::sample_quantile`] — the same quantile machinery that
//! chooses construction-time boundaries) such that, assuming load is
//! uniform over the donor's keys, the pair's load equalises. One
//! migration runs at a time; concurrent callers see
//! [`RebalanceOutcome::Busy`].

use index_traits::ConcurrentOrderedIndex;

use crate::config::sample_quantile;
use crate::index::ShardedWormhole;

/// Policy knobs of [`ShardedWormhole::maybe_rebalance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceConfig {
    /// Minimum point ops an adjacent pair must have absorbed since the
    /// last decision before it is considered (gates noise at low traffic).
    pub min_pair_ops: u64,
    /// Trigger threshold: the pair's hotter shard must carry more than
    /// `imbalance_percent / 100` times the cooler shard's ops (200 = 2×).
    pub imbalance_percent: u64,
    /// Approximate keys migrated per batch — the granularity at which
    /// writes to the migrating range are paused and the boundary advances.
    pub batch_keys: usize,
    /// Cap on the stride sample of donor keys used to pick the boundary.
    pub sample_cap: usize,
    /// Smallest key transfer worth a migration; imbalances whose computed
    /// move is smaller report [`RebalanceOutcome::NoMove`].
    pub min_move_keys: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            min_pair_ops: 8_192,
            imbalance_percent: 200,
            batch_keys: 256,
            sample_cap: 2_048,
            min_move_keys: 64,
        }
    }
}

/// Decision state guarded by the migration mutex: the op-counter snapshot
/// deltas are computed against.
#[derive(Debug, Default)]
pub(crate) struct MigrationState {
    pub(crate) last_ops: Vec<u64>,
}

/// What one completed migration did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// Index of the moved boundary (between shards `pair` and `pair + 1`).
    pub pair: usize,
    /// The shard that shed keys.
    pub donor: usize,
    /// Boundary before the migration.
    pub from_boundary: Vec<u8>,
    /// Boundary after the migration.
    pub to_boundary: Vec<u8>,
    /// Keys copied (and drained from the donor).
    pub moved_keys: usize,
    /// Batches executed (freeze/copy/publish/drain rounds).
    pub batches: usize,
    /// Async grace periods that had already elapsed when awaited.
    pub grace_waits_free: usize,
    /// Async grace periods that still had to wait for a reader.
    pub grace_waits_blocked: usize,
}

/// Outcome of one [`ShardedWormhole::maybe_rebalance`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebalanceOutcome {
    /// No adjacent pair was imbalanced enough (or traffic since the last
    /// decision was below [`RebalanceConfig::min_pair_ops`]).
    Balanced,
    /// Another thread is already migrating; nothing was done.
    Busy,
    /// Pair `pair` is imbalanced, but no viable boundary move exists
    /// (move too small, or the quantile landed on a degenerate boundary).
    NoMove {
        /// The imbalanced boundary index.
        pair: usize,
    },
    /// A migration ran to completion.
    Migrated(MigrationReport),
}

/// Why an explicit [`ShardedWormhole::migrate_boundary`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrateError {
    /// `pair` does not name a boundary (`pair >= shard_count() - 1`).
    NoSuchBoundary {
        /// The rejected boundary index.
        pair: usize,
        /// The index's shard count.
        shards: usize,
    },
    /// The target key cannot serve as this boundary.
    InvalidTarget {
        /// What the target violated.
        reason: &'static str,
    },
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::NoSuchBoundary { pair, shards } => {
                write!(f, "no boundary {pair} in a {shards}-shard index")
            }
            MigrateError::InvalidTarget { reason } => {
                write!(f, "invalid boundary target: {reason}")
            }
        }
    }
}

impl std::error::Error for MigrateError {}

/// Unwind guard for a migration batch's freeze window: if the copy step
/// panics, the drop republishes the current boundaries with no frozen
/// range, so writers to the batch range are released instead of waiting
/// forever on a migration that will never publish. Defused on the normal
/// path (the boundary publication replaces the frozen table anyway).
struct UnfreezeOnUnwind<'a, V: Clone + Send + Sync + 'static> {
    index: &'a ShardedWormhole<V>,
    /// The boundaries current for this batch (pre-move).
    boundaries: &'a [Vec<u8>],
    armed: bool,
}

impl<V: Clone + Send + Sync + 'static> UnfreezeOnUnwind<'_, V> {
    /// Disarms the guard: the normal publication path takes over.
    fn defuse(mut self) {
        self.armed = false;
    }
}

impl<V: Clone + Send + Sync + 'static> Drop for UnfreezeOnUnwind<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            // Still inside the migration mutex (the caller holds it across
            // the unwind), so publishing here is race-free. The grace
            // period is deliberately left to age asynchronously — nothing
            // on the panic path waits on it.
            let _ = self
                .index
                .publish_router(self.boundaries.to_vec().into_boxed_slice(), None);
        }
    }
}

/// RAII bracket for a migration's router mutations: construction revokes
/// the biased fast path and drains it
/// (`ShardedWormhole::begin_router_mutation`); drop — on the normal *and*
/// unwind paths — restores it. Declared before the per-batch
/// [`UnfreezeOnUnwind`] guards so that, when a copy panics, the guard's
/// freeze-free republish still runs while the bias is revoked.
struct BiasSection<'a, V: Clone + Send + Sync + 'static> {
    index: &'a ShardedWormhole<V>,
}

impl<'a, V: Clone + Send + Sync + 'static> BiasSection<'a, V> {
    fn begin(index: &'a ShardedWormhole<V>) -> Self {
        index.begin_router_mutation();
        Self { index }
    }
}

impl<V: Clone + Send + Sync + 'static> Drop for BiasSection<'_, V> {
    fn drop(&mut self) {
        self.index.end_router_mutation();
    }
}

impl<V: Clone + Send + Sync + 'static> ShardedWormhole<V> {
    /// Checks the per-shard load counters and, when an adjacent pair is
    /// imbalanced, migrates the boundary between them toward balance.
    /// Cheap when there is nothing to do (one counter sweep); safe to call
    /// from any thread at any frequency. See the [module docs](self).
    pub fn maybe_rebalance(&self) -> RebalanceOutcome {
        let config = self.rebalance_config().clone();
        let Some(mut state) = self.migration.try_lock() else {
            return RebalanceOutcome::Busy;
        };
        let counts = self.op_counts();
        if state.last_ops.len() != counts.len() {
            state.last_ops = vec![0; counts.len()];
        }
        let deltas: Vec<u64> = counts
            .iter()
            .zip(&state.last_ops)
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        state.last_ops = counts;

        // The adjacent pair with the worst hot/(cold+1) load ratio above
        // the trigger threshold.
        let mut best: Option<(usize, u64, u64)> = None;
        for pair in 0..deltas.len().saturating_sub(1) {
            let (dl, dr) = (deltas[pair], deltas[pair + 1]);
            if dl + dr < config.min_pair_ops {
                continue;
            }
            let (hot, cold) = (dl.max(dr), dl.min(dr));
            if (hot as u128) * 100 < (config.imbalance_percent as u128) * (cold as u128 + 1) {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, bl, br)) => {
                    let (bh, bc) = (bl.max(br), bl.min(br));
                    (hot as u128) * (bc as u128 + 1) > (bh as u128) * (cold as u128 + 1)
                }
            };
            if better {
                best = Some((pair, dl, dr));
            }
        }
        let Some((pair, dl, dr)) = best else {
            return RebalanceOutcome::Balanced;
        };

        // Donor = the hotter shard. Shed enough keys that — assuming load
        // is uniform over the donor's keys — the pair's loads equalise:
        // w = K · (hot − cold) / (2 · hot).
        let donor = if dl >= dr { pair } else { pair + 1 };
        let (hot, cold) = (dl.max(dr), dl.min(dr));
        let donor_keys = self.shard(donor).len();
        if donor_keys == 0 || hot == 0 {
            return RebalanceOutcome::NoMove { pair };
        }
        let want_moved =
            ((donor_keys as u128) * ((hot - cold) as u128) / (2 * hot as u128)) as usize;
        if want_moved < config.min_move_keys {
            return RebalanceOutcome::NoMove { pair };
        }
        // New boundary = the donor key at the rank that sheds `want_moved`
        // keys: a left donor sheds its top, a right donor its bottom.
        let (sample, seen) = self.stride_sample(donor, config.sample_cap);
        if seen == 0 {
            return RebalanceOutcome::NoMove { pair };
        }
        let rank = if donor == pair {
            seen.saturating_sub(want_moved)
        } else {
            want_moved.min(seen.saturating_sub(1))
        };
        let Some(target) = sample_quantile(&sample, rank, seen).map(<[u8]>::to_vec) else {
            return RebalanceOutcome::NoMove { pair };
        };
        match self.migrate_locked(pair, &target, &config) {
            Ok(report) if report.batches == 0 && report.from_boundary == report.to_boundary => {
                // The quantile landed on the current boundary: nothing moved.
                RebalanceOutcome::NoMove { pair }
            }
            Ok(report) => RebalanceOutcome::Migrated(report),
            Err(_) => RebalanceOutcome::NoMove { pair },
        }
    }

    /// Migrates the boundary between shards `pair` and `pair + 1` to
    /// `target`, in batches, while the index serves traffic — the forced
    /// (policy-free) entry point; [`ShardedWormhole::maybe_rebalance`] is
    /// the counter-driven one. Blocks until the migration completes.
    ///
    /// `target` must be non-empty and strictly between the neighbouring
    /// boundaries; `target` equal to the current boundary is a no-op.
    pub fn migrate_boundary(
        &self,
        pair: usize,
        target: &[u8],
    ) -> Result<MigrationReport, MigrateError> {
        let config = self.rebalance_config().clone();
        let _guard = self.migration.lock();
        self.migrate_locked(pair, target, &config)
    }

    /// The migration engine. Caller must hold the migration mutex (which
    /// serialises router publications).
    fn migrate_locked(
        &self,
        pair: usize,
        target: &[u8],
        config: &RebalanceConfig,
    ) -> Result<MigrationReport, MigrateError> {
        let mut boundaries = self.boundaries();
        if pair >= boundaries.len() {
            return Err(MigrateError::NoSuchBoundary {
                pair,
                shards: self.shard_count(),
            });
        }
        if target.is_empty() {
            return Err(MigrateError::InvalidTarget {
                reason: "boundary keys must be non-empty",
            });
        }
        if pair > 0 && target <= boundaries[pair - 1].as_slice() {
            return Err(MigrateError::InvalidTarget {
                reason: "target at or below the left neighbour boundary",
            });
        }
        if pair + 1 < boundaries.len() && target >= boundaries[pair + 1].as_slice() {
            return Err(MigrateError::InvalidTarget {
                reason: "target at or above the right neighbour boundary",
            });
        }
        let cur = boundaries[pair].clone();
        let mut report = MigrationReport {
            pair,
            donor: pair,
            from_boundary: cur.clone(),
            to_boundary: target.to_vec(),
            moved_keys: 0,
            batches: 0,
            grace_waits_free: 0,
            grace_waits_blocked: 0,
        };
        if target == cur.as_slice() {
            // Explicit no-op: the boundary is already there.
            return Ok(report);
        }
        // Moving the boundary *down* sheds the left shard's top range to
        // the right shard; moving it *up* sheds the right shard's bottom
        // range to the left shard.
        let moving_down = target < cur.as_slice();
        let (donor, recipient) = if moving_down {
            (pair, pair + 1)
        } else {
            (pair + 1, pair)
        };
        report.donor = donor;
        let (range_lo, range_hi) = if moving_down {
            (target.to_vec(), cur.clone())
        } else {
            (cur.clone(), target.to_vec())
        };
        // Plan intermediate boundaries from one cursor pass over the
        // donor's migrating range (every `batch_keys`-th key). Concurrent
        // inserts make the batch sizes approximate, which is fine — the
        // copy step re-reads the live frozen range exactly.
        let mut schedule = self.plan_steps(donor, &range_lo, &range_hi, config.batch_keys);
        if moving_down {
            schedule.reverse();
        }
        schedule.push(target.to_vec());

        // Revoke and drain the biased fast path before the first
        // publication; restored (even on a panicking copy) when the
        // section drops at the end of the migration.
        let _bias = BiasSection::begin(self);

        let mut cur_now = cur;
        for next_boundary in schedule {
            if next_boundary == cur_now {
                continue;
            }
            let (freeze_lo, freeze_hi) = if moving_down {
                (next_boundary.clone(), cur_now.clone())
            } else {
                (cur_now.clone(), next_boundary.clone())
            };
            debug_assert!(freeze_lo < freeze_hi, "degenerate migration batch");

            // 1. Freeze writes to the batch range; after the grace period
            // every in-flight write that routed pre-freeze has landed.
            // The unwind guard republishes a freeze-free router if the
            // copy below panics (a panicking `V::clone`, say): an aborted
            // migration must never leave the range frozen forever, which
            // would livelock every future writer to it. The key/value
            // state is still consistent on that path — copies already in
            // the recipient stay unreachable and are overwritten by any
            // retried migration.
            let grace = self.publish_router(
                boundaries.clone().into_boxed_slice(),
                Some((freeze_lo.clone(), freeze_hi.clone())),
            );
            let unfreeze = UnfreezeOnUnwind {
                index: self,
                boundaries: &boundaries,
                armed: true,
            };
            self.account_grace(&mut report, grace);

            // 2. Copy the now-immutable range donor → recipient.
            {
                let mut cursor = self.shard(donor).scan(&freeze_lo);
                while let Some((key, value)) = cursor.next() {
                    if key >= freeze_hi.as_slice() {
                        break;
                    }
                    self.shard(recipient).set(key, value.clone());
                    report.moved_keys += 1;
                }
            }
            unfreeze.defuse();

            // 3. Publish the new boundary (and unfreeze); after the grace
            // period no reader still resolves the range against the donor.
            boundaries[pair] = next_boundary.clone();
            let grace = self.publish_router(boundaries.clone().into_boxed_slice(), None);
            self.account_grace(&mut report, grace);

            // 4. Drain the donor's stale copy of the range, shrinking its
            // structure through the ordinary merge engine.
            self.shard(donor).remove_range(&freeze_lo, &freeze_hi);

            cur_now = next_boundary;
            report.batches += 1;
            self.metrics().migration_batches.inc();
        }
        self.metrics()
            .migration_moved_keys
            .add(report.moved_keys as u64);
        Ok(report)
    }

    /// Completes an asynchronous grace period, recording whether it had
    /// already elapsed for free (the expected steady state).
    fn account_grace(&self, report: &mut MigrationReport, grace: u64) {
        if self.router_qsbr().grace_elapsed(grace) {
            report.grace_waits_free += 1;
        } else {
            report.grace_waits_blocked += 1;
        }
        self.router_qsbr().wait_grace(grace);
    }

    /// Every `len/cap`-th key of shard `shard` (ascending, via the cursor
    /// API), plus the number of keys seen — the rebalancer's boundary-pick
    /// sample.
    fn stride_sample(&self, shard: usize, cap: usize) -> (Vec<Vec<u8>>, usize) {
        let stride = (self.shard(shard).len() / cap.max(1)).max(1);
        let mut sample = Vec::new();
        let mut seen = 0usize;
        let mut cursor = self.shard(shard).scan(b"");
        while let Some((key, _)) = cursor.next() {
            if seen.is_multiple_of(stride) {
                sample.push(key.to_vec());
            }
            seen += 1;
        }
        (sample, seen)
    }

    /// Intermediate batch boundaries: every `batch`-th key of the donor's
    /// `[lo, hi)` range, strictly inside it.
    fn plan_steps(&self, donor: usize, lo: &[u8], hi: &[u8], batch: usize) -> Vec<Vec<u8>> {
        let batch = batch.max(1);
        let mut steps = Vec::new();
        let mut count = 0usize;
        let mut cursor = self.shard(donor).scan(lo);
        while let Some((key, _)) = cursor.next() {
            if key >= hi {
                break;
            }
            if count > 0 && count.is_multiple_of(batch) {
                steps.push(key.to_vec());
            }
            count += 1;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShardedConfig;
    use wormhole::WormholeConfig;

    fn config() -> ShardedConfig {
        ShardedConfig::with_boundaries(vec![b"m".to_vec()])
            .with_inner(WormholeConfig::optimized().with_leaf_capacity(8))
            .with_rebalance(RebalanceConfig {
                min_pair_ops: 64,
                imbalance_percent: 200,
                batch_keys: 32,
                sample_cap: 512,
                min_move_keys: 8,
            })
    }

    fn populate(idx: &ShardedWormhole<u64>, prefix: &str, n: u64) {
        for i in 0..n {
            idx.set(format!("{prefix}{i:05}").as_bytes(), i);
        }
    }

    #[test]
    fn migrate_boundary_moves_keys_between_shards() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(config());
        populate(&idx, "a", 600); // shard 0
        populate(&idx, "z", 100); // shard 1
        assert_eq!(idx.shard(0).len(), 600);
        assert_eq!(idx.shard(1).len(), 100);

        // Move the boundary down into the middle of shard 0's keys.
        let report = idx.migrate_boundary(0, b"a00300").expect("viable target");
        assert_eq!(report.pair, 0);
        assert_eq!(report.donor, 0);
        assert_eq!(report.moved_keys, 300);
        assert!(report.batches >= 300 / 32, "batches respect batch_keys");
        assert_eq!(report.from_boundary, b"m".to_vec());
        assert_eq!(report.to_boundary, b"a00300".to_vec());
        assert_eq!(idx.boundaries(), vec![b"a00300".to_vec()]);
        assert_eq!(idx.shard(0).len(), 300);
        assert_eq!(idx.shard(1).len(), 400);
        assert_eq!(idx.len(), 700);
        idx.check_invariants();
        // Every key still reads back through the new routing.
        for i in 0..600u64 {
            assert_eq!(idx.get(format!("a{i:05}").as_bytes()), Some(i));
        }
        for i in 0..100u64 {
            assert_eq!(idx.get(format!("z{i:05}").as_bytes()), Some(i));
        }

        // Move it back up (right shard is now the donor).
        let report = idx.migrate_boundary(0, b"z00050").expect("viable target");
        assert_eq!(report.donor, 1);
        assert_eq!(report.moved_keys, 300 + 50);
        assert_eq!(idx.shard(0).len(), 650);
        assert_eq!(idx.shard(1).len(), 50);
        idx.check_invariants();
        let all = idx.range_from(b"", usize::MAX);
        assert_eq!(all.len(), 700);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn migrate_to_current_boundary_is_a_noop() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(config());
        populate(&idx, "a", 100);
        let report = idx.migrate_boundary(0, b"m").expect("no-op accepted");
        assert_eq!(report.batches, 0);
        assert_eq!(report.moved_keys, 0);
        assert_eq!(idx.boundaries(), vec![b"m".to_vec()]);
        idx.check_invariants();
    }

    #[test]
    fn migrate_into_and_out_of_an_empty_shard() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(config());
        populate(&idx, "a", 200); // shard 0 only; shard 1 stays empty
        assert_eq!(idx.shard(1).len(), 0);

        // Migration into the empty shard.
        idx.migrate_boundary(0, b"a00150").expect("into empty");
        assert_eq!(idx.shard(0).len(), 150);
        assert_eq!(idx.shard(1).len(), 50);
        idx.check_invariants();

        // Drain shard 0 almost entirely (donor keeps nothing but its
        // floor), then migrate *from* a now-nearly-empty donor range: the
        // range [a00000, a00001) of shard 0 — and finally from a range
        // holding no keys at all.
        idx.migrate_boundary(0, b"a00001")
            .expect("donor nearly empty");
        assert_eq!(idx.shard(0).len(), 1);
        assert_eq!(idx.shard(1).len(), 199);
        // Range ["", a00001) → ["", a00000): no keys below a00000 exist,
        // so this moves the boundary without moving any key.
        let report = idx.migrate_boundary(0, b"a00000").expect("empty range");
        assert_eq!(report.moved_keys, 1); // a00000 itself moves
        assert_eq!(idx.shard(0).len(), 0, "donor emptied");
        assert_eq!(idx.shard(1).len(), 200);
        idx.check_invariants();
        assert_eq!(idx.len(), 200);
        // An empty shard still serves routed ops.
        assert_eq!(idx.get(b"5"), None);
        idx.set(b"5zz", 7);
        assert_eq!(idx.shard(0).len(), 1);
        assert_eq!(idx.get(b"5zz"), Some(7));
    }

    #[test]
    fn migrate_rejects_degenerate_targets() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(
            ShardedConfig::with_boundaries(vec![b"g".to_vec(), b"t".to_vec()])
                .with_inner(WormholeConfig::optimized().with_leaf_capacity(8)),
        );
        assert!(matches!(
            idx.migrate_boundary(2, b"x"),
            Err(MigrateError::NoSuchBoundary { pair: 2, shards: 3 })
        ));
        assert!(matches!(
            idx.migrate_boundary(0, b""),
            Err(MigrateError::InvalidTarget { .. })
        ));
        // At or across the right neighbour boundary.
        assert!(matches!(
            idx.migrate_boundary(0, b"t"),
            Err(MigrateError::InvalidTarget { .. })
        ));
        assert!(matches!(
            idx.migrate_boundary(0, b"zz"),
            Err(MigrateError::InvalidTarget { .. })
        ));
        // At or across the left neighbour boundary.
        assert!(matches!(
            idx.migrate_boundary(1, b"g"),
            Err(MigrateError::InvalidTarget { .. })
        ));
        assert!(matches!(
            idx.migrate_boundary(1, b"a"),
            Err(MigrateError::InvalidTarget { .. })
        ));
        idx.check_invariants();
    }

    #[test]
    fn scan_resume_key_exactly_at_a_migrated_boundary() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(config());
        populate(&idx, "a", 300);
        // Consume up to just short of the future boundary, remember the
        // resume key, migrate so the boundary lands exactly on it, then
        // resume: the continuation must re-route to the new owner with no
        // loss or duplication.
        let mut first = Vec::new();
        let resume = {
            let mut cursor = idx.scan(b"");
            cursor.collect_next(150, &mut first);
            cursor.resume_key()
        };
        assert_eq!(resume, b"a00149\x00".to_vec());
        idx.migrate_boundary(0, &resume)
            .expect("boundary at resume key");
        assert_eq!(idx.shard_for(&resume), 1, "resume key re-homed");
        let mut rest = Vec::new();
        idx.scan(&resume).collect_next(usize::MAX, &mut rest);
        let mut all = first;
        all.extend(rest);
        assert_eq!(all.len(), 300);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        idx.check_invariants();
    }

    #[test]
    fn scan_open_across_a_migration_stays_exhaustive_and_ordered() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(config());
        populate(&idx, "a", 400);
        // Open a cursor, stream a prefix, migrate the region ahead of it,
        // then keep streaming the *same* cursor: the epoch re-validation
        // must re-route the remainder.
        let mut cursor = idx.scan(b"");
        let mut seen = Vec::new();
        cursor.collect_next(100, &mut seen);
        idx.migrate_boundary(0, b"a00200")
            .expect("migrate ahead of cursor");
        while let Some((k, v)) = cursor.next() {
            seen.push((k.to_vec(), *v));
        }
        assert_eq!(seen.len(), 400, "no key lost or duplicated across the move");
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
        idx.check_invariants();
    }

    #[test]
    fn maybe_rebalance_reacts_to_skewed_load() {
        // min_pair_ops above the populate traffic (1 050 sets) but below
        // the hammer phase (4 000), so only the latter can trigger a move.
        let idx: ShardedWormhole<u64> =
            ShardedWormhole::with_config(config().with_rebalance(RebalanceConfig {
                min_pair_ops: 2_000,
                imbalance_percent: 200,
                batch_keys: 32,
                sample_cap: 512,
                min_move_keys: 8,
            }));
        populate(&idx, "a", 1_000); // all resident keys in shard 0
        populate(&idx, "z", 50);
        // Take one decision to reset the delta baseline; the populate
        // traffic alone is below min_pair_ops.
        assert_eq!(idx.maybe_rebalance(), RebalanceOutcome::Balanced);
        // Hammer shard 0 only.
        for round in 0..4u64 {
            for i in 0..1_000u64 {
                idx.set(format!("a{i:05}").as_bytes(), round);
            }
        }
        let outcome = idx.maybe_rebalance();
        let RebalanceOutcome::Migrated(report) = outcome else {
            panic!("expected a migration, got {outcome:?}");
        };
        assert_eq!(report.pair, 0);
        assert_eq!(report.donor, 0);
        assert!(
            report.moved_keys >= 300 && report.moved_keys <= 700,
            "roughly half the donor's keys move ({} moved)",
            report.moved_keys
        );
        idx.check_invariants();
        assert_eq!(idx.len(), 1_050);
        // Balanced traffic afterwards leaves the boundary alone.
        for i in 0..1_000u64 {
            idx.get(format!("a{i:05}").as_bytes());
        }
        // The moved range now routes to shard 1, so uniform traffic over
        // the former hot range is served by both shards.
        let counts = idx.op_counts();
        assert!(counts[1] > 0, "shard 1 now takes part of the hot range");
    }

    #[test]
    fn panicking_copy_unfreezes_the_range() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        // A value whose clone panics on demand: the migration copy step
        // clones values, so arming the bomb aborts a migration mid-batch.
        #[derive(Debug)]
        struct Bomb(Arc<AtomicBool>);
        impl Clone for Bomb {
            fn clone(&self) -> Self {
                assert!(!self.0.load(Ordering::Relaxed), "armed bomb cloned");
                Bomb(Arc::clone(&self.0))
            }
        }

        let idx: ShardedWormhole<Bomb> = ShardedWormhole::with_config(config());
        let armed = Arc::new(AtomicBool::new(false));
        for i in 0..200u64 {
            idx.set(format!("a{i:05}").as_bytes(), Bomb(Arc::clone(&armed)));
        }
        armed.store(true, Ordering::Relaxed);
        let aborted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            idx.migrate_boundary(0, b"a00100")
        }));
        assert!(aborted.is_err(), "armed migration must panic in its copy");
        // The unwind guard must have republished a freeze-free router:
        // writes to the (formerly frozen) batch range complete instead of
        // spinning forever.
        armed.store(false, Ordering::Relaxed);
        idx.set(b"a00150x", Bomb(Arc::clone(&armed)));
        assert!(idx.get(b"a00150x").is_some());
        // A retried migration overwrites any unreachable partial copies
        // and leaves the index fully consistent.
        let report = idx.migrate_boundary(0, b"a00100").expect("retry succeeds");
        assert!(report.moved_keys >= 100);
        idx.check_invariants();
        assert_eq!(idx.len(), 201);
    }

    #[test]
    fn maybe_rebalance_is_quiet_without_traffic_or_imbalance() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(config());
        assert_eq!(idx.maybe_rebalance(), RebalanceOutcome::Balanced);
        populate(&idx, "a", 100);
        populate(&idx, "z", 100);
        idx.maybe_rebalance(); // resets deltas
                               // Balanced traffic across both shards.
        for i in 0..200u64 {
            idx.get(format!("a{:05}", i % 100).as_bytes());
            idx.get(format!("z{:05}", i % 100).as_bytes());
        }
        assert_eq!(idx.maybe_rebalance(), RebalanceOutcome::Balanced);
        idx.check_invariants();
    }
}
