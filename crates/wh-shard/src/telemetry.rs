//! Telemetry for the sharded front: router path counters (how often the
//! migration-idle biased fast entry served an op vs the classic critical
//! section), migration progress counters, and the frozen-write wait — the
//! only place a point op can block on a migration.
//!
//! The per-shard op counters (the rebalancer's load signal) are plain
//! [`wh_telemetry::Counter`]s owned by the index itself and registered by
//! [`ShardedWormhole::register_metrics`](crate::ShardedWormhole::register_metrics)
//! under `…_shard<i>_ops_total` names — one source of truth for the
//! rebalancer, `op_counts()`, and the exposition.

use wh_telemetry::{Counter, Histogram, Registry};

/// Front-level event counters for one [`ShardedWormhole`](crate::ShardedWormhole).
#[derive(Clone, Debug, Default)]
pub struct ShardMetrics {
    /// Ops served through the migration-idle biased fast entry (no router
    /// critical section).
    pub router_fast_entries: Counter,
    /// Ops that took a classic router critical section (fast path
    /// disabled, or a migration in flight).
    pub router_classic_entries: Counter,
    /// Migration batches executed (freeze/copy/publish/drain rounds).
    pub migration_batches: Counter,
    /// Keys copied donor → recipient by migrations.
    pub migration_moved_keys: Counter,
    /// Writes that found their key range write-frozen by an in-flight
    /// migration batch and had to wait it out.
    pub frozen_write_waits: Counter,
    /// Time a frozen write spent waiting for its range to unfreeze.
    pub frozen_write_wait_ns: Histogram,
}

impl ShardMetrics {
    /// Registers every metric under `<prefix>_…` names (prefix must match
    /// `[a-z0-9_]+`, e.g. `wh_shard`).
    pub fn register_into(&self, registry: &Registry, prefix: &str) {
        registry.register_counter(
            &format!("{prefix}_router_fast_entries_total"),
            &self.router_fast_entries,
        );
        registry.register_counter(
            &format!("{prefix}_router_classic_entries_total"),
            &self.router_classic_entries,
        );
        registry.register_counter(
            &format!("{prefix}_migration_batches_total"),
            &self.migration_batches,
        );
        registry.register_counter(
            &format!("{prefix}_migration_moved_keys_total"),
            &self.migration_moved_keys,
        );
        registry.register_counter(
            &format!("{prefix}_frozen_write_waits_total"),
            &self.frozen_write_waits,
        );
        registry.register_histogram(
            &format!("{prefix}_frozen_write_wait_ns"),
            &self.frozen_write_wait_ns,
        );
    }
}
