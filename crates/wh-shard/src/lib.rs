//! # wh-shard: a range-partitioned sharded front over Wormhole
//!
//! The concurrent [`wormhole::Wormhole`] serialises all structural
//! modifications — leaf splits and merges, each including an RCU grace
//! period — on one MetaTrieHT writer mutex, so multi-writer throughput
//! stops scaling with core count the moment the workload churns structure.
//! [`ShardedWormhole`] removes that ceiling by **range-partitioning** the
//! key space over `N` independent `Wormhole` instances: writers on
//! different shards share no mutex, no QSBR domain, and no leaf lock,
//! while point reads pay only one boundary binary search before the usual
//! lock-free optimistic lookup.
//!
//! Hash partitioning would balance load more uniformly, but it destroys
//! the property this crate exists to keep: **global key order**. With
//! range partitioning an ordered scan is simply the per-shard scans
//! chained in boundary order, so the sharded index still implements the
//! full [`index_traits::ConcurrentOrderedIndex`] contract, streaming
//! cursor included.
//!
//! ## Boundary invariants
//!
//! A [`ShardedWormhole`] with `N` shards carries `N - 1` **boundary keys**
//! `b₀ < b₁ < … < bₙ₋₂`, fixed at construction ([`ShardedConfig`]):
//!
//! * boundaries are **strictly ascending** and **non-empty** (an empty
//!   boundary would leave shard 0 with an empty range);
//! * shard `i` owns exactly the half-open range `[bᵢ₋₁, bᵢ)` (shard 0
//!   starts at the empty key ε, the last shard is unbounded above); a
//!   boundary key itself belongs to the shard on its **right**;
//! * every operation on key `k` is routed to the unique owning shard
//!   (`shard_for(k)` = number of boundaries `<= k`), so a key can never
//!   appear in two shards and `len`/`stats` are plain sums.
//!
//! Boundaries never move: this is static partitioning, chosen either
//! evenly over the byte space, from a sample of the expected keyset
//! (quantiles), or explicitly — see [`ShardedConfig`]. Re-balancing is a
//! rebuild, not a background migration.
//!
//! ## Cross-shard cursor resume semantics
//!
//! `scan(start)` returns the ordinary [`index_traits::Cursor`], driven by
//! an [`index_traits::ChainedSource`] that opens per-shard cursors
//! lazily, in boundary order: the first segment starts at `start` inside
//! the owning shard, each later shard's segment starts at that shard's
//! lower boundary. Because the partition is by range, the concatenation
//! is globally ordered and yields each live key at most once; each batch
//! retains the underlying shard cursor's guarantee (one seqlock-validated
//! leaf snapshot, no global snapshot across batches).
//!
//! [`index_traits::Cursor::resume_key`] therefore needs no shard
//! awareness: the reported key (successor of the last consumed key) is a
//! plain global key, and a fresh `scan(resume_key)` routes it back to
//! exactly the shard the stream stopped in — including the edge case
//! where the last consumed key was a shard's maximum, in which case the
//! successor routes to the *next* shard and the scan continues seamlessly
//! across the boundary. The steady-state allocation-free discipline is
//! preserved: the chained source delegates each batch fill directly to
//! the current shard's native leaf-streaming source, into the one batch
//! arena owned by the outer cursor.
//!
//! ## Quick start
//!
//! ```
//! use index_traits::ConcurrentOrderedIndex;
//! use wh_shard::ShardedWormhole;
//!
//! // 4 shards, boundaries split evenly over the first key byte.
//! let index: ShardedWormhole<u64> = ShardedWormhole::new(4);
//! index.set(b"James", 1);
//! index.set(b"aaron", 2);
//! index.set(b"zoe", 3);
//! assert_eq!(index.get(b"aaron"), Some(2));
//! // Ordered scans cross shard boundaries transparently.
//! let all = index.range_from(b"", usize::MAX);
//! assert_eq!(all.len(), 3);
//! assert_eq!(all[0].0, b"James".to_vec());
//! assert_eq!(all[2].0, b"zoe".to_vec());
//! ```

pub mod config;
pub mod index;

pub use config::ShardedConfig;
pub use index::ShardedWormhole;
