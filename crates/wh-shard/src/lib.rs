//! # wh-shard: a range-partitioned sharded front over Wormhole
//!
//! The concurrent [`wormhole::Wormhole`] serialises all structural
//! modifications — leaf splits and merges, each including an RCU grace
//! period — on one MetaTrieHT writer mutex, so multi-writer throughput
//! stops scaling with core count the moment the workload churns structure.
//! [`ShardedWormhole`] removes that ceiling by **range-partitioning** the
//! key space over `N` independent `Wormhole` instances: writers on
//! different shards share no mutex, no QSBR domain, and no leaf lock,
//! while point reads pay only one boundary binary search before the usual
//! lock-free optimistic lookup.
//!
//! Hash partitioning would balance load more uniformly, but it destroys
//! the property this crate exists to keep: **global key order**. With
//! range partitioning an ordered scan is simply the per-shard scans
//! chained in boundary order, so the sharded index still implements the
//! full [`index_traits::ConcurrentOrderedIndex`] contract, streaming
//! cursor included.
//!
//! ## Boundary invariants
//!
//! A [`ShardedWormhole`] with `N` shards carries `N - 1` **boundary keys**
//! `b₀ < b₁ < … < bₙ₋₂`:
//!
//! * boundaries are **strictly ascending** and **non-empty** (an empty
//!   boundary would leave shard 0 with an empty range);
//! * shard `i` owns exactly the half-open range `[bᵢ₋₁, bᵢ)` (shard 0
//!   starts at the empty key ε, the last shard is unbounded above); a
//!   boundary key itself belongs to the shard on its **right**;
//! * every operation on key `k` is routed to the unique owning shard
//!   (`shard_for(k)` = number of boundaries `<= k`), so a key is never
//!   *reachable* in two shards at once and `len`/`stats` are plain sums
//!   (with a documented transient overcount of at most one in-flight
//!   migration batch).
//!
//! Initial boundaries come from [`ShardedConfig`] (even byte-split, sample
//! quantiles, or explicit keys) — and, unlike the crate's first iteration,
//! they are **not** frozen afterwards: rebalancing is a live background
//! range migration, not a rebuild.
//!
//! ## The router-epoch protocol
//!
//! Routing state lives in one immutable, heap-allocated table (the
//! boundary array, a publication **epoch**, and an optional write-frozen
//! range), published through an atomic pointer and protected by its own
//! [`wh_epoch::Qsbr`] domain — the same asynchronous-grace publication
//! pattern the concurrent Wormhole uses for its MetaTrieHT tables. The
//! router domain is **biased**: migrations are rare and well-delimited,
//! so the common case pays almost nothing for the protection it almost
//! never needs.
//!
//! * **Point ops, migration idle** (the steady state): the table can only
//!   be swapped by a migration, and none is running, so a routed op skips
//!   the critical section entirely. It enters a *biased fast section*
//!   ([`wh_epoch::QsbrHandle::try_fast`]) — one relaxed generation store,
//!   one fence, one load of the domain's bias flag — routes off the
//!   published table, and executes the shard op. No epoch bookkeeping, no
//!   condvar traffic, no freeze check (a frozen range implies a migration,
//!   which implies the bias was already revoked). A single-shard index
//!   has nothing to route or migrate at all and bypasses the router
//!   unconditionally.
//! * **Point ops, migration in flight**: `try_fast` declines (the bias is
//!   revoked) and the op falls back to a classic read-side critical
//!   section, exactly the pre-fast-path protocol. Reads still never block
//!   on the router. A write whose key falls in the (rare, bounded) frozen
//!   range of an in-flight migration batch waits — outside any critical
//!   section — until the batch publishes its new boundary; every other
//!   write proceeds untouched.
//! * **Migration** (see [`rebalance`]) first executes the **draining
//!   barrier** ([`wh_epoch::Qsbr::drain_barrier`]): it revokes the bias
//!   flag, waits until every registered handle's fast-section generation
//!   is even (no fast section in flight), and forces one grace period for
//!   classic sections. The ordering argument is a Dekker handshake on
//!   SC fences: a fast entry stores its generation odd, fences, then
//!   loads the bias; the barrier stores the bias false, fences, then
//!   reads the generations. Whichever fence comes first in the total
//!   order, either the barrier observes the odd generation and waits the
//!   reader out, or the reader observes the revoked bias and falls back —
//!   so no op that skipped its critical section can still be
//!   dereferencing a table the migration is about to retire. From there
//!   the migration proceeds under the classic protocol: it swaps the
//!   table (bumping the epoch), starts a grace period without waiting for
//!   it, and completes it only at the next point it needs the ordering
//!   guarantee; old tables are retired through `Qsbr::defer`. The grace
//!   periods give the two reader-visibility guarantees the protocol rests
//!   on: after the *freeze* publication's grace, no in-flight write can
//!   still be mutating the batch range in the donor (so the copy is of
//!   immutable data); after the *boundary* publication's grace, no
//!   in-flight read or scan fill can still be resolving the range against
//!   the donor (so the donor's stale copy can be drained). When the
//!   migration finishes (or unwinds), it restores the bias *after* its
//!   last table swap: a fast section granted after the restore can only
//!   have loaded the final table, whose retirement would again be behind
//!   a future barrier.
//! * **Scans** record the router epoch each cursor segment was routed
//!   under and re-validate it on every batch fill (a fast section while
//!   idle, a router critical section during migrations); a stale segment
//!   is dropped and its sweep bound re-routed through the live
//!   boundaries. A long-running cross-shard
//!   cursor therefore stays globally ordered, never yields a key twice,
//!   and never loses a key to a concurrent boundary move — and a
//!   [`index_traits::Cursor::resume_key`] is a plain global key that a
//!   fresh `scan` re-routes through whatever the boundaries are *then*.
//!
//! ## Load-driven rebalancing
//!
//! Every routed op bumps a cache-line-padded per-shard counter.
//! [`ShardedWormhole::maybe_rebalance`] turns those counters into
//! boundary moves: when an adjacent pair's load ratio exceeds the
//! configured threshold, the hot shard sheds keys — the new boundary
//! picked by the same sample-quantile machinery that chooses
//! construction-time boundaries, fed by a live cursor sample — in bounded
//! freeze/copy/publish/drain batches. [`RebalanceConfig`] holds the
//! policy knobs; [`ShardedWormhole::migrate_boundary`] is the explicit,
//! policy-free entry point. See the [`rebalance`] module docs for the
//! batch protocol and its exactly-one-home argument.
//!
//! ## Quick start
//!
//! ```
//! use index_traits::ConcurrentOrderedIndex;
//! use wh_shard::ShardedWormhole;
//!
//! // 4 shards, boundaries split evenly over the first key byte.
//! let index: ShardedWormhole<u64> = ShardedWormhole::new(4);
//! index.set(b"James", 1);
//! index.set(b"aaron", 2);
//! index.set(b"zoe", 3);
//! assert_eq!(index.get(b"aaron"), Some(2));
//! // Ordered scans cross shard boundaries transparently.
//! let all = index.range_from(b"", usize::MAX);
//! assert_eq!(all.len(), 3);
//! assert_eq!(all[0].0, b"James".to_vec());
//! assert_eq!(all[2].0, b"zoe".to_vec());
//! // Boundaries can move while the index serves traffic.
//! index.migrate_boundary(0, b"ab").expect("live boundary move");
//! assert_eq!(index.get(b"aaron"), Some(2));
//! ```

pub mod config;
pub mod index;
pub mod rebalance;
pub mod telemetry;

pub use config::ShardedConfig;
pub use index::ShardedWormhole;
pub use rebalance::{MigrateError, MigrationReport, RebalanceConfig, RebalanceOutcome};
pub use telemetry::ShardMetrics;
