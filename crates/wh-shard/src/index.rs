//! The sharded index: the epoch-published boundary router, per-shard
//! handles and op counters, and the cross-shard scan cursor.
//!
//! See the [crate docs](crate) for the boundary invariants, the
//! router-epoch protocol, and the cross-shard cursor's resume semantics.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use index_traits::{ConcurrentOrderedIndex, Cursor, CursorSource, IndexStats, ScanBatch};
use parking_lot::Mutex;
use wh_epoch::Qsbr;
use wh_telemetry::{Counter, Registry};
use wormhole::{Wormhole, WormholeMetrics};

use crate::config::ShardedConfig;
use crate::rebalance::{MigrationState, RebalanceConfig};
use crate::telemetry::ShardMetrics;

/// The immutable routing state published to readers: one of these is live
/// at any instant, swapped atomically by the migration engine and retired
/// through the router's QSBR domain (`wh_epoch::Qsbr`) — the same
/// async-grace pattern the concurrent Wormhole uses for its MetaTrieHT
/// publications.
pub(crate) struct RouterTable {
    /// Publication counter, bumped by every swap. Long-lived consumers (a
    /// cross-shard scan segment) record it when they make a routing
    /// decision and re-validate before acting on that decision again.
    pub(crate) epoch: u64,
    /// `shards - 1` strictly ascending, non-empty boundary keys; shard `i`
    /// owns `[boundaries[i-1], boundaries[i])`.
    pub(crate) boundaries: Box<[Vec<u8>]>,
    /// A half-open key range whose *writes* are briefly paused while a
    /// migration batch copies it from donor to recipient. Reads are never
    /// paused — the range still routes to the donor, whose copy stays
    /// authoritative until the boundary moves.
    pub(crate) freeze: Option<(Vec<u8>, Vec<u8>)>,
}

impl RouterTable {
    /// Index of the shard owning `key`: the number of boundaries `<= key`.
    /// Short-circuits the single-shard configuration (empty boundary array)
    /// so the degenerate front pays no binary-search setup.
    #[inline]
    pub(crate) fn route(&self, key: &[u8]) -> usize {
        if self.boundaries.is_empty() {
            return 0;
        }
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }

    /// Whether a write to `key` must wait for the in-flight migration
    /// batch to publish its new boundary. The overwhelmingly common
    /// migration-idle table has `freeze == None`, which exits on the
    /// discriminant test alone — no key comparisons.
    #[inline]
    fn write_frozen(&self, key: &[u8]) -> bool {
        let Some((lo, hi)) = &self.freeze else {
            return false;
        };
        key >= lo.as_slice() && key < hi.as_slice()
    }
}

/// Send-wrapper freeing a retired router table once its grace period has
/// elapsed (queued through `Qsbr::defer`).
struct RetiredRouter(*mut RouterTable);

// SAFETY: the wrapper owns the only reference that will ever free the
// table; the pointee is plain owned data (`Vec<u8>` keys).
unsafe impl Send for RetiredRouter {}

impl Drop for RetiredRouter {
    fn drop(&mut self) {
        // SAFETY: run after the grace period following the swap that
        // unpublished the table — no reader can still hold it.
        unsafe { drop(Box::from_raw(self.0)) }
    }
}

/// A range-partitioned front over `N` independent concurrent [`Wormhole`]
/// instances, with **online rebalancing**: the boundary between two
/// adjacent shards can migrate at runtime without blocking readers or
/// writers outside the migrating range.
///
/// Point operations are one boundary lookup (a binary search over at most
/// `N - 1` boundary keys in the epoch-published router table) plus the
/// routed shard's own operation — for reads, a lock-free optimistic
/// lookup. Writers on different shards share **no** state: each shard
/// owns its MetaTrieHT writer mutex, its QSBR domain, and its leaf locks,
/// so structural modifications (splits, merges, grace periods) on one
/// shard never serialise writers on another.
///
/// While no migration is in flight (the overwhelmingly common state),
/// point operations route through a **biased fast entry** of the router's
/// QSBR domain — one relaxed store, one fence, and one flag load, no
/// critical-section bookkeeping. A migration first executes a draining
/// barrier that revokes the bias and waits out in-flight fast sections;
/// only then does it publish, so ops that skipped the critical section
/// are still ordered against every table swap. While the bias is revoked
/// (or with [`ShardedConfig::with_router_fast_path`] disabled), ops fall
/// back to classic read-side critical sections, which the migration
/// engine orders with asynchronous grace periods — see the
/// [crate docs](crate) for the full protocol, and
/// [`ShardedWormhole::maybe_rebalance`] /
/// [`ShardedWormhole::migrate_boundary`] for the entry points.
pub struct ShardedWormhole<V> {
    /// The per-shard indexes, in boundary order. The array is fixed at
    /// construction — migration moves *boundaries* (and the keys between
    /// them), never shards — so routing hands out `&Wormhole<V>` without
    /// indirection.
    shards: Box<[Wormhole<V>]>,
    /// The live routing state. Readers dereference it inside a critical
    /// section of `router_qsbr`; the migration engine swaps it and retires
    /// the old table after a grace period.
    router: AtomicPtr<RouterTable>,
    /// QSBR domain protecting `router` publications.
    router_qsbr: Qsbr,
    /// Per-shard point-op counters — the load signal `maybe_rebalance`
    /// consumes *and* the telemetry series `register_metrics` exposes (one
    /// source of truth). Relaxed increments; each [`Counter`] cell lives
    /// on its own cache line, so shards never false-share.
    ops: Box<[Counter]>,
    /// Front-level event counters (router path split, migration progress,
    /// frozen-write waits).
    metrics: ShardMetrics,
    /// Event counters shared by *every* shard's inner [`Wormhole`]
    /// (seqlock retries, splits, …): one `Arc`, aggregated cells.
    wormhole_metrics: Arc<WormholeMetrics>,
    /// The rebalance policy (from [`ShardedConfig`]).
    rebalance: RebalanceConfig,
    /// Whether the migration-idle biased fast path is enabled
    /// ([`ShardedConfig::with_router_fast_path`]). When `false`, every op
    /// routes through the classic critical-section path — the A/B toggle
    /// the benchmarks compare.
    fast_path: bool,
    /// Serialises migrations and holds the rebalancer's decision state
    /// (the op-counter snapshot deltas are computed against).
    pub(crate) migration: Mutex<MigrationState>,
}

impl<V: Clone + Send + Sync + 'static> ShardedWormhole<V> {
    /// Creates an index with `shards` evenly byte-split shards and the
    /// default per-shard configuration ([`ShardedConfig::evenly`]).
    pub fn new(shards: usize) -> Self {
        Self::with_config(ShardedConfig::evenly(shards))
    }

    /// Creates an index from a full [`ShardedConfig`].
    pub fn with_config(config: ShardedConfig) -> Self {
        let (boundaries, inner, rebalance, fast_path) = config.into_parts();
        let wormhole_metrics = Arc::new(WormholeMetrics::default());
        let shards: Vec<Wormhole<V>> = (0..boundaries.len() + 1)
            .map(|_| Wormhole::with_config_and_metrics(inner, Arc::clone(&wormhole_metrics)))
            .collect();
        let ops: Vec<Counter> = (0..shards.len()).map(|_| Counter::new()).collect();
        let router = Box::into_raw(Box::new(RouterTable {
            epoch: 0,
            boundaries: boundaries.into_boxed_slice(),
            freeze: None,
        }));
        let router_qsbr = Qsbr::new();
        if fast_path {
            // The index is born migration-idle: fast entries allowed until
            // the first migration's draining barrier revokes them.
            router_qsbr.resume_bias();
        }
        Self {
            shards: shards.into_boxed_slice(),
            router: AtomicPtr::new(router),
            router_qsbr,
            ops: ops.into_boxed_slice(),
            metrics: ShardMetrics::default(),
            wormhole_metrics,
            rebalance,
            fast_path,
            migration: Mutex::new(MigrationState::default()),
        }
    }

    /// Creates an index whose boundaries are the quantiles of `sample`
    /// ([`ShardedConfig::from_sample`]): the go-to constructor when a
    /// representative slice of the expected keyset is at hand.
    pub fn from_sample<K: AsRef<[u8]>>(shards: usize, sample: &[K]) -> Self {
        Self::with_config(ShardedConfig::from_sample(shards, sample))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Runs `f` against the live router table, protected either by a
    /// *biased fast entry* (migration idle: one relaxed store, one fence,
    /// one flag load — no critical-section bookkeeping) or, when a
    /// migration has revoked the bias or the fast path is disabled, by a
    /// classic read-side critical section of the router's QSBR domain.
    /// Either way the table cannot be retired while `f` runs.
    pub(crate) fn with_router<R>(&self, f: impl FnOnce(&RouterTable) -> R) -> R {
        self.router_qsbr.with_local_handle(|handle| {
            let mut f = Some(f);
            if self.fast_path {
                if let Some(_fast) = handle.try_fast() {
                    self.metrics.router_fast_entries.inc();
                    // SAFETY: the fast guard was granted while the domain
                    // is biased, i.e. no migration is mid-flight: the next
                    // retirement is preceded by a draining barrier that
                    // waits for this fast section (see
                    // `Qsbr::drain_barrier` for the ordering argument), so
                    // the table stays live for the whole section.
                    let router = unsafe { &*self.router.load(Ordering::Acquire) };
                    return (f.take().expect("called once"))(router);
                }
            }
            self.metrics.router_classic_entries.inc();
            handle.critical(|| {
                // SAFETY: `router` always points to a live table; the
                // migration engine retires a swapped-out table only after a
                // grace period, and we are inside a critical section.
                let router = unsafe { &*self.router.load(Ordering::Acquire) };
                (f.take().expect("called once"))(router)
            })
        })
    }

    /// Revokes the biased fast path and drains it: after this returns, no
    /// thread is inside a fast section and every future point op falls back
    /// to the classic critical-section path, so [`publish_router`]'s
    /// grace-period protocol covers all of them. The migration engine calls
    /// this once per migration, *before the first* publication; callers
    /// must hold the migration mutex.
    ///
    /// [`publish_router`]: ShardedWormhole::publish_router
    pub(crate) fn begin_router_mutation(&self) {
        self.router_qsbr.drain_barrier();
    }

    /// Re-enables the biased fast path after the last publication of a
    /// migration. Safe even though retired tables may still be aging: a
    /// fast reader entering from here on can only load the final published
    /// table (the bias store is ordered after the last swap), never a
    /// retired one. Callers must hold the migration mutex.
    pub(crate) fn end_router_mutation(&self) {
        if self.fast_path {
            self.router_qsbr.resume_bias();
        }
    }

    /// Publishes a new router table, starts — without waiting for — the
    /// grace period retiring the old one, and returns the grace token.
    /// Must only be called while holding the migration mutex, with the
    /// biased fast path revoked ([`ShardedWormhole::begin_router_mutation`])
    /// — fast sections do not participate in grace periods, so a swap while
    /// the domain is biased could retire a table out from under them.
    pub(crate) fn publish_router(
        &self,
        boundaries: Box<[Vec<u8>]>,
        freeze: Option<(Vec<u8>, Vec<u8>)>,
    ) -> u64 {
        debug_assert!(
            !self.router_qsbr.biased(),
            "publish_router requires a preceding begin_router_mutation"
        );
        // SAFETY: the migration mutex serialises all swaps, so reading the
        // current epoch without a guard is race-free.
        let epoch = unsafe { &*self.router.load(Ordering::Acquire) }.epoch + 1;
        let fresh = Box::into_raw(Box::new(RouterTable {
            epoch,
            boundaries,
            freeze,
        }));
        let prev = self.router.swap(fresh, Ordering::AcqRel);
        // Defer *before* starting the grace period so the retirement is
        // stamped with this publication's grace token: the migration
        // engine's own `wait_grace(grace)` then reclaims the table, rather
        // than parking it until the following publication.
        let retired = RetiredRouter(prev);
        self.router_qsbr.defer(Box::new(move || drop(retired)));
        self.router_qsbr.start_grace()
    }

    /// The router's QSBR domain (migration engine only).
    pub(crate) fn router_qsbr(&self) -> &Qsbr {
        &self.router_qsbr
    }

    /// The rebalance policy this index was built with.
    pub(crate) fn rebalance_config(&self) -> &RebalanceConfig {
        &self.rebalance
    }

    /// A snapshot of the current boundary keys, strictly ascending
    /// (`shard_count() - 1` entries). Boundaries move under online
    /// rebalancing, so this is a copy, not a borrow of live state.
    pub fn boundaries(&self) -> Vec<Vec<u8>> {
        self.with_router(|router| router.boundaries.to_vec())
    }

    /// Index of the shard owning `key` under the *current* boundaries.
    /// Advisory under concurrent rebalancing: a migration may re-home the
    /// key after this returns. Point operations therefore never use this —
    /// they route inside a router critical section.
    #[inline]
    pub fn shard_for(&self, key: &[u8]) -> usize {
        self.with_router(|router| router.route(key))
    }

    /// Handle to shard `i` (boundary order).
    pub fn shard(&self, i: usize) -> &Wormhole<V> {
        &self.shards[i]
    }

    /// Handle to the shard owning `key` — the router composed with
    /// [`ShardedWormhole::shard`]. Advisory, like
    /// [`ShardedWormhole::shard_for`].
    #[inline]
    pub fn shard_of(&self, key: &[u8]) -> &Wormhole<V> {
        &self.shards[self.shard_for(key)]
    }

    /// Routes a whole batch of keys against **one** router-table snapshot:
    /// appends the owning shard index of each key to `out` (in input
    /// order) and returns the epoch of the table that made the decisions.
    /// The entire batch is resolved inside a single router protection span
    /// (a biased fast section while migrations are idle, a classic QSBR
    /// critical section otherwise),
    /// so all decisions are mutually consistent — no interleaving
    /// migration can split one batch across two boundary generations.
    ///
    /// Like [`ShardedWormhole::shard_for`], the result is **advisory**
    /// under concurrent rebalancing: a migration published after this
    /// returns may re-home any of the keys. Callers that use it for
    /// placement (a serving layer dispatching sub-batches to shard-affine
    /// workers) must still execute through the routed public API — which
    /// re-routes inside its own protection span — and can compare epochs
    /// across calls to detect that boundaries moved between two batches
    /// (epochs are monotonically increasing; see `publish_router`).
    pub fn route_batch(&self, keys: &[&[u8]], out: &mut Vec<usize>) -> u64 {
        out.reserve(keys.len());
        self.with_router(|router| {
            for key in keys {
                out.push(router.route(key));
            }
            router.epoch
        })
    }

    /// The current router epoch: bumped by every boundary publication
    /// (including the transient freeze/unfreeze swaps inside one migration
    /// batch). A serving layer snapshots it with
    /// [`ShardedWormhole::route_batch`] and treats a change as "boundaries
    /// may have moved — re-derive any cached affinity".
    pub fn router_epoch(&self) -> u64 {
        self.with_router(|router| router.epoch)
    }

    /// Cumulative point-operation count per shard (the rebalancer's load
    /// signal; also handy for demos and diagnostics). Reads the same
    /// telemetry counters [`ShardedWormhole::register_metrics`] exposes.
    pub fn op_counts(&self) -> Vec<u64> {
        self.ops.iter().map(Counter::get).collect()
    }

    /// Front-level event counters (router path split, migration progress,
    /// frozen-write waits).
    pub fn metrics(&self) -> &ShardMetrics {
        &self.metrics
    }

    /// The event counters shared by every shard's inner [`Wormhole`].
    pub fn wormhole_metrics(&self) -> &Arc<WormholeMetrics> {
        &self.wormhole_metrics
    }

    /// Registers the front's full metric set into `registry` under
    /// `<prefix>_…` names: the front-level counters, one
    /// `<prefix>_shard<i>_ops_total` per shard, the shards' aggregated
    /// [`WormholeMetrics`] (`<prefix>_wormhole_…`), and the router QSBR
    /// domain's [`wh_epoch::EpochMetrics`] (`<prefix>_router_epoch_…`).
    pub fn register_metrics(&self, registry: &Registry, prefix: &str) {
        self.metrics.register_into(registry, prefix);
        for (i, ops) in self.ops.iter().enumerate() {
            registry.register_counter(&format!("{prefix}_shard{i}_ops_total"), ops);
        }
        self.wormhole_metrics
            .register_into(registry, &format!("{prefix}_wormhole"));
        self.router_qsbr
            .metrics()
            .register_into(registry, &format!("{prefix}_router_epoch"));
    }

    /// Routes a read: one router protection span (fast or critical-section,
    /// see [`ShardedWormhole::with_router`]) covering the boundary lookup
    /// *and* the shard operation, so a migration's draining barrier and
    /// grace periods order donor draining after every in-flight read that
    /// routed to it.
    ///
    /// The single-shard front bypasses the router entirely: with no
    /// boundaries there is nothing to migrate, the table can never be
    /// swapped, and the degenerate index behaves like the bare concurrent
    /// Wormhole plus one relaxed counter bump.
    #[inline]
    fn routed_read<R>(&self, key: &[u8], f: impl FnOnce(&Wormhole<V>) -> R) -> R {
        if self.shards.len() == 1 {
            self.ops[0].inc();
            return f(&self.shards[0]);
        }
        self.with_router(|router| {
            let shard = router.route(key);
            self.ops[shard].inc();
            f(&self.shards[shard])
        })
    }

    /// Routes a write, waiting out a migration batch that has frozen the
    /// key's range (bounded: one batch copy plus a grace period). The wait
    /// spins *outside* any critical section so it never holds up the very
    /// grace period that will unfreeze the range. Fast-path writes are
    /// sound under freezes for a stronger reason than the grace argument:
    /// a fast section can only exist while the domain is biased, and the
    /// draining barrier that precedes every freeze publication waits for
    /// all of them — so a frozen table is never observed from a fast entry.
    ///
    /// Like reads, the single-shard front (which can never freeze — there
    /// is no boundary to migrate) skips the router.
    #[inline]
    fn routed_write<R>(&self, key: &[u8], mut f: impl FnMut(&Wormhole<V>) -> R) -> R {
        if self.shards.len() == 1 {
            self.ops[0].inc();
            return f(&self.shards[0]);
        }
        // `Some` once the key was found frozen: the wait is counted (and
        // timed) exactly once per write, however many spins it takes.
        let mut frozen_wait: Option<Option<std::time::Instant>> = None;
        loop {
            let done = self.with_router(|router| {
                if router.write_frozen(key) {
                    return None;
                }
                let shard = router.route(key);
                self.ops[shard].inc();
                Some(f(&self.shards[shard]))
            });
            match done {
                Some(result) => {
                    if let Some(timing) = frozen_wait {
                        self.metrics.frozen_write_wait_ns.record_elapsed(timing);
                    }
                    return result;
                }
                None => {
                    if frozen_wait.is_none() {
                        self.metrics.frozen_write_waits.inc();
                        frozen_wait = Some(wh_telemetry::start_timing());
                    }
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Number of classic router critical-section entries made on this
    /// index's router domain so far (domain-wide, backed by the telemetry
    /// counter `register_metrics` exposes as
    /// `…_router_epoch_section_entries_total`). Diagnostic: regression
    /// tests pin the migration-idle fast path to "zero new entries per op"
    /// through this counter (biased fast entries are not counted).
    pub fn router_section_entries(&self) -> u64 {
        self.router_qsbr.metrics().section_entries.get()
    }

    /// Total leaf nodes across every shard.
    pub fn leaf_count(&self) -> usize {
        self.shards.iter().map(Wormhole::leaf_count).sum()
    }

    /// Deferred-reclamation callbacks still queued across every shard.
    pub fn pending_reclamation(&self) -> usize {
        self.shards.iter().map(Wormhole::pending_reclamation).sum()
    }

    /// Validates every shard's structural invariants plus the partition
    /// invariant: each shard holds only keys inside its boundary range
    /// (tests only — walks every key; call it quiesced, not while a
    /// migration batch is mid-flight).
    pub fn check_invariants(&self) {
        let boundaries = self.boundaries();
        for (i, shard) in self.shards.iter().enumerate() {
            shard.check_invariants();
            let lower = (i > 0).then(|| boundaries[i - 1].as_slice());
            let upper = boundaries.get(i).map(Vec::as_slice);
            let mut cursor = shard.scan(b"");
            while let Some((key, _)) = cursor.next() {
                if let Some(lower) = lower {
                    assert!(key >= lower, "shard {i} holds key below its lower boundary");
                }
                if let Some(upper) = upper {
                    assert!(
                        key < upper,
                        "shard {i} holds key at/above its upper boundary"
                    );
                }
            }
        }
    }
}

impl<V> Drop for ShardedWormhole<V> {
    fn drop(&mut self) {
        // `&mut self` guarantees no reader holds a router critical section
        // on *this* index; flush any table retirements still aging.
        self.router_qsbr.flush();
        // SAFETY: exclusively owned now.
        unsafe { drop(Box::from_raw(self.router.load(Ordering::Acquire))) };
    }
}

/// The cross-shard [`CursorSource`]: streams per-shard cursor *segments*
/// in global key order, re-routing through the live boundaries whenever
/// the router epoch moves.
///
/// Each segment is the owning shard's native cursor opened at the sweep
/// bound `resume`. Every batch fill runs inside a router critical section
/// and first re-validates that the segment's routing decision is still
/// current (`segment.epoch == router.epoch`); a stale segment is dropped
/// and re-routed from `resume`, which the live boundaries may now send to
/// a *different* shard — exactly what keeps the stream exhaustive when a
/// migration moves part of the unswept range to a neighbouring shard.
/// Because the migration engine drains a donor only after the grace
/// period that follows the boundary publication, a fill that validated
/// against the old epoch always completes against the donor's still-
/// authoritative copy; see the crate docs for the full argument.
///
/// In the steady state (no migration, segment mid-shard) a fill is: one
/// epoch compare, the shard cursor's native leaf-snapshot fill straight
/// into the outer arena, and a successor bump of the reused `resume`
/// buffer — no allocation.
struct RoutedSource<'a, V: Clone + Send + Sync + 'static> {
    index: &'a ShardedWormhole<V>,
    /// Inclusive lower bound of the next batch; strictly above every key
    /// already streamed (reused buffer).
    resume: Vec<u8>,
    segment: Option<Segment<'a, V>>,
    /// Reserve hint replayed onto each newly opened segment.
    hint: Option<(usize, usize)>,
    done: bool,
}

/// One per-shard cursor plus the routing decision it was opened under.
struct Segment<'a, V> {
    cursor: Cursor<'a, V>,
    /// Router epoch of the table that routed this segment.
    epoch: u64,
    /// The shard the segment streams.
    shard: usize,
}

/// Outcome of one routed fill attempt.
enum FillStep {
    /// The batch holds pairs; the sweep bound advanced past them.
    Filled,
    /// The segment's shard held nothing at/above the sweep bound; the
    /// bound jumped to the shard's upper boundary and the next attempt
    /// re-routes.
    NextShard,
    /// The last shard is exhausted: the scan is complete.
    Done,
}

impl<V: Clone + Send + Sync + 'static> CursorSource<V> for RoutedSource<'_, V> {
    fn fill_next(&mut self, batch: &mut ScanBatch<V>, limit: usize) -> bool {
        batch.clear();
        while !self.done {
            let Self {
                index,
                resume,
                segment,
                hint,
                ..
            } = self;
            let index = *index;
            // `with_router` gives fills the same biased fast entry as point
            // ops while no migration is in flight; the epoch re-validation
            // below is then a compare of two equal numbers. When a
            // migration is mid-flight the fill runs in a classic critical
            // section, exactly as before.
            let step = index.with_router(|router| {
                {
                    let valid = matches!(segment, Some(seg) if seg.epoch == router.epoch);
                    if !valid {
                        // (Re-)route the sweep bound through the live
                        // boundaries and open the owning shard's cursor.
                        let shard = router.route(resume);
                        let mut cursor = index.shards[shard].scan(resume);
                        if let Some((items, key_bytes)) = *hint {
                            cursor.reserve(items, key_bytes);
                        }
                        *segment = Some(Segment {
                            cursor,
                            epoch: router.epoch,
                            shard,
                        });
                    }
                    let seg = segment.as_mut().expect("segment open");
                    let upper = router.boundaries.get(seg.shard);
                    if CursorSource::fill_next(&mut seg.cursor, batch, limit) {
                        // Clamp the segment to its shard's upper boundary:
                        // keys at/above it that the shard cursor surfaced are
                        // a migration's in-flight copies, whose authoritative
                        // home is still the *donor* — streaming them here
                        // could let the sweep bound advance past copies that
                        // land behind the shard cursor's internal position,
                        // silently skipping them. The donor (or, after the
                        // boundary publishes, a re-routed segment) serves
                        // them instead.
                        if let Some(upper) = upper {
                            let mut keep = batch.len();
                            while keep > 0 && batch.key(keep - 1) >= upper.as_slice() {
                                keep -= 1;
                            }
                            batch.truncate(keep);
                        }
                        if let Some(last) = batch.last_key() {
                            // Advance the sweep bound past everything
                            // streamed, so a re-route (or a later segment)
                            // resumes exactly after this batch.
                            index_traits::immediate_successor_into(last, resume);
                            FillStep::Filled
                        } else {
                            // Everything the shard yielded was at/above its
                            // boundary: this segment is done; sweep on from
                            // the boundary.
                            let upper = upper.expect("clamp only fires with an upper boundary");
                            if upper.as_slice() > resume.as_slice() {
                                resume.clear();
                                resume.extend_from_slice(upper);
                            }
                            FillStep::NextShard
                        }
                    } else {
                        match upper {
                            // Jump the sweep bound to the shard's upper
                            // boundary (forward only — the bound may already
                            // sit exactly on it when a boundary equals a
                            // streamed key's successor). Either way the next
                            // attempt routes to a later shard, so the sweep
                            // progresses.
                            Some(upper) => {
                                if upper.as_slice() > resume.as_slice() {
                                    resume.clear();
                                    resume.extend_from_slice(upper);
                                }
                                FillStep::NextShard
                            }
                            None => FillStep::Done,
                        }
                    }
                }
            });
            match step {
                FillStep::Filled => return true,
                FillStep::NextShard => self.segment = None,
                FillStep::Done => self.done = true,
            }
        }
        false
    }

    fn reserve(&mut self, items: usize, key_bytes: usize) {
        self.hint = Some((items, key_bytes));
        self.resume.reserve(key_bytes);
        if let Some(seg) = self.segment.as_mut() {
            seg.cursor.reserve(items, key_bytes);
        }
    }
}

impl<V: Clone + Send + Sync + 'static> ConcurrentOrderedIndex<V> for ShardedWormhole<V> {
    fn name(&self) -> &'static str {
        "wormhole-sharded"
    }

    fn get(&self, key: &[u8]) -> Option<V> {
        self.routed_read(key, |shard| shard.get(key))
    }

    /// Batched point lookups with one router critical-section entry for the
    /// whole batch: every key is routed against a single table snapshot,
    /// the per-shard sub-batches run through each shard's pipelined
    /// `get_batch`, and results are scattered back to input order. The
    /// epoch entry/exit (two SeqCst stores plus a wake check per op on the
    /// per-key path) is paid once per batch instead of once per key.
    ///
    /// A migration freeze never affects this path: freezes pause *writes*
    /// only, and a frozen range keeps routing reads to the donor shard,
    /// whose copy stays authoritative until the boundary moves.
    fn get_batch(&self, keys: &[&[u8]]) -> Vec<Option<V>> {
        if keys.is_empty() {
            return Vec::new();
        }
        if self.shards.len() == 1 {
            // Single-shard bypass: no boundaries, no migrations, no router
            // protection needed — hand the whole batch to the one shard's
            // pipelined engine (see `routed_read`).
            self.ops[0].add(keys.len() as u64);
            return self.shards[0].get_batch(keys);
        }
        self.with_router(|router| {
            let mut out: Vec<Option<V>> = Vec::new();
            out.resize_with(keys.len(), || None);
            let routes: Vec<usize> = keys.iter().map(|key| router.route(key)).collect();
            let mut sub_keys: Vec<&[u8]> = Vec::new();
            let mut sub_pos: Vec<usize> = Vec::new();
            for shard in 0..self.shards.len() {
                sub_keys.clear();
                sub_pos.clear();
                for (i, &s) in routes.iter().enumerate() {
                    if s == shard {
                        sub_keys.push(keys[i]);
                        sub_pos.push(i);
                    }
                }
                if sub_keys.is_empty() {
                    continue;
                }
                // One counter bump per sub-batch; the rebalancer's load
                // signal still counts individual ops.
                self.ops[shard].add(sub_keys.len() as u64);
                let values = self.shards[shard].get_batch(&sub_keys);
                debug_assert_eq!(values.len(), sub_pos.len());
                for (value, &i) in values.into_iter().zip(&sub_pos) {
                    out[i] = value;
                }
            }
            out
        })
    }

    fn set(&self, key: &[u8], value: V) -> Option<V> {
        let mut value = Some(value);
        self.routed_write(key, |shard| {
            shard.set(
                key,
                value.take().expect("value handed to exactly one shard"),
            )
        })
    }

    fn del(&self, key: &[u8]) -> Option<V> {
        self.routed_write(key, |shard| shard.del(key))
    }

    /// Total keys. While a migration batch is between its copy and its
    /// donor drain, the moved batch is transiently counted in both shards
    /// (at most one batch's worth); the count is exact whenever no
    /// migration is mid-flight.
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)> {
        let mut out: Vec<(Vec<u8>, V)> = Vec::with_capacity(count.min(1024));
        if count == 0 {
            return out;
        }
        self.scan(start).collect_next(count, &mut out);
        out
    }

    /// Opens a cross-shard streaming cursor: per-shard cursor segments
    /// chained in live boundary order (see the crate docs for the routed
    /// source protocol).
    ///
    /// [`Cursor::resume_key`] needs no shard awareness: the reported key
    /// (successor of the last consumed key) is a plain global key, and a
    /// fresh `scan(resume_key)` routes it through the boundaries *current
    /// at that time* — a scan therefore resumes correctly even across a
    /// migration that re-homed the resume position between the two scans.
    fn scan<'a>(&'a self, start: &[u8]) -> Cursor<'a, V>
    where
        V: Clone + 'a,
    {
        Cursor::new(
            start,
            Box::new(RoutedSource {
                index: self,
                resume: start.to_vec(),
                segment: None,
                hint: None,
                done: false,
            }),
        )
    }

    fn stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for shard in self.shards.iter() {
            let s = shard.stats();
            total.keys += s.keys;
            total.structure_bytes += s.structure_bytes;
            total.key_bytes += s.key_bytes;
            total.value_bytes += s.value_bytes;
        }
        // The router table is index structure too.
        total.structure_bytes +=
            self.with_router(|router| router.boundaries.iter().map(Vec::len).sum::<usize>());
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole::WormholeConfig;

    fn small() -> ShardedConfig {
        ShardedConfig::evenly(4).with_inner(WormholeConfig::optimized().with_leaf_capacity(8))
    }

    #[test]
    fn empty_index() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(small());
        assert_eq!(idx.shard_count(), 4);
        assert!(idx.is_empty());
        assert_eq!(idx.get(b"missing"), None);
        assert_eq!(idx.del(b"missing"), None);
        assert!(idx.range_from(b"", 10).is_empty());
        idx.check_invariants();
    }

    #[test]
    fn routing_respects_boundaries() {
        let idx: ShardedWormhole<u64> =
            ShardedWormhole::with_config(ShardedConfig::with_boundaries(vec![
                b"g".to_vec(),
                b"n".to_vec(),
                b"t".to_vec(),
            ]));
        assert_eq!(idx.shard_for(b""), 0);
        assert_eq!(idx.shard_for(b"f"), 0);
        assert_eq!(idx.shard_for(b"g"), 1, "boundary key belongs to the right");
        assert_eq!(idx.shard_for(b"mzzz"), 1);
        assert_eq!(idx.shard_for(b"n"), 2);
        assert_eq!(idx.shard_for(b"zzz"), 3);
        assert!(std::ptr::eq(idx.shard_of(b"f"), idx.shard(0)));
        assert!(std::ptr::eq(idx.shard_of(b"zzz"), idx.shard(3)));
    }

    #[test]
    fn route_batch_matches_per_key_routing_and_reports_epoch() {
        let idx: ShardedWormhole<u64> =
            ShardedWormhole::with_config(ShardedConfig::with_boundaries(vec![
                b"g".to_vec(),
                b"n".to_vec(),
                b"t".to_vec(),
            ]));
        let keys: Vec<&[u8]> = vec![b"", b"f", b"g", b"mzzz", b"n", b"szz", b"t", b"zzz"];
        let mut routes = Vec::new();
        let epoch = idx.route_batch(&keys, &mut routes);
        assert_eq!(routes, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        // Batch routing agrees with the per-key entry point key by key.
        let singles: Vec<usize> = keys.iter().map(|k| idx.shard_for(k)).collect();
        assert_eq!(routes, singles);
        assert_eq!(epoch, idx.router_epoch());
        // Appends rather than overwrites, so a dispatcher can reuse one
        // scratch vector across sub-batches.
        let extra = idx.route_batch(&[b"a"], &mut routes);
        assert_eq!(routes.len(), keys.len() + 1);
        assert_eq!(routes[keys.len()], 0);
        assert_eq!(extra, epoch, "no migration ran; epoch must be stable");
    }

    #[test]
    fn route_batch_epoch_moves_with_migration() {
        let idx: ShardedWormhole<u64> =
            ShardedWormhole::with_config(ShardedConfig::with_boundaries(vec![b"m".to_vec()]));
        for i in 0..600u64 {
            idx.set(format!("k{i:05}").as_bytes(), i);
        }
        let mut before = Vec::new();
        let epoch_before = idx.route_batch(&[b"k00001", b"zz"], &mut before);
        // Move the boundary: everything is below "m", so shifting it down
        // re-homes a slice of keys to shard 1.
        idx.migrate_boundary(0, b"k00300")
            .expect("migration succeeds");
        let mut after = Vec::new();
        let epoch_after = idx.route_batch(&[b"k00001", b"k00500"], &mut after);
        assert!(
            epoch_after > epoch_before,
            "boundary publication must bump the router epoch"
        );
        assert_eq!(after, vec![0, 1]);
        idx.check_invariants();
    }

    #[test]
    fn crud_routes_and_sums() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(small());
        for i in 0..2_000u64 {
            // First bytes spread over the whole byte space.
            let key = [(i % 256) as u8, (i / 256) as u8, i as u8];
            assert_eq!(idx.set(&key, i), None);
        }
        assert_eq!(idx.len(), 2_000);
        // All four shards actually hold data, and the op counters saw the
        // routed traffic.
        for s in 0..idx.shard_count() {
            assert!(idx.shard(s).len() > 0, "shard {s} empty");
        }
        assert_eq!(idx.op_counts().iter().sum::<u64>(), 2_000);
        for i in 0..2_000u64 {
            let key = [(i % 256) as u8, (i / 256) as u8, i as u8];
            assert_eq!(idx.get(&key), Some(i));
        }
        idx.check_invariants();
        for i in (0..2_000u64).step_by(2) {
            let key = [(i % 256) as u8, (i / 256) as u8, i as u8];
            assert_eq!(idx.del(&key), Some(i));
        }
        assert_eq!(idx.len(), 1_000);
        let stats = idx.stats();
        assert_eq!(stats.keys, 1_000);
        assert!(stats.structure_bytes > 0);
        assert_eq!(idx.op_counts().iter().sum::<u64>(), 5_000);
        idx.check_invariants();
    }

    #[test]
    fn cross_shard_scan_is_globally_ordered() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(small());
        for i in 0..1_500u64 {
            let key = format!("{:03}-{i:05}", i * 7 % 256);
            idx.set(key.as_bytes(), i);
        }
        let all = idx.range_from(b"", usize::MAX);
        assert_eq!(all.len(), 1_500);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan unordered");
        // Windows starting inside every shard agree with the full drain.
        for start in [&b""[..], b"0", b"064", b"128", b"192", b"255", b"zzz"] {
            let want: Vec<_> = all
                .iter()
                .filter(|(k, _)| k.as_slice() >= start)
                .take(40)
                .cloned()
                .collect();
            assert_eq!(idx.range_from(start, 40), want, "start={start:?}");
        }
    }

    #[test]
    fn cursor_resume_crosses_shard_edges() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(small());
        for i in 0..256u64 {
            idx.set(&[i as u8, b'x'], i);
        }
        // Drain in windows of 10 through resume keys: every window lands on
        // or crosses shard edges at 64/128/192.
        let mut seen = Vec::new();
        let mut resume = Vec::new();
        loop {
            let mut cursor = idx.scan(&resume);
            let mut window = Vec::new();
            if cursor.collect_next(10, &mut window) == 0 {
                break;
            }
            resume = cursor.resume_key();
            seen.extend(window);
        }
        assert_eq!(seen.len(), 256);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(seen.first().unwrap().1, 0);
        assert_eq!(seen.last().unwrap().1, 255);
    }

    #[test]
    fn batched_gets_split_by_boundary_and_match_per_key_gets() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(small());
        for i in 0..2_000u64 {
            let key = [(i % 256) as u8, (i / 256) as u8, i as u8];
            idx.set(&key, i);
        }
        let ops_before: u64 = idx.op_counts().iter().sum();
        // A batch mixing hits across every shard, misses, and duplicates.
        let mut key_bytes: Vec<Vec<u8>> = (0..700u64)
            .map(|i| {
                let i = i * 3 % 2_100; // every third key is a miss
                vec![(i % 256) as u8, (i / 256) as u8, i as u8]
            })
            .collect();
        key_bytes.push(key_bytes[0].clone());
        key_bytes.push(b"not-anywhere".to_vec());
        let keys: Vec<&[u8]> = key_bytes.iter().map(|k| k.as_slice()).collect();
        let batched = idx.get_batch(&keys);
        assert_eq!(batched.len(), keys.len());
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(batched[i], idx.get(key), "key {key:?}");
        }
        // The load signal counted every batched key exactly once (plus the
        // per-key verification gets just issued).
        let ops_after: u64 = idx.op_counts().iter().sum();
        assert_eq!(ops_after - ops_before, 2 * keys.len() as u64);
    }

    #[test]
    fn batch_spanning_frozen_range_reads_the_donor() {
        // A migration batch freezes writes to a sub-range while it copies;
        // reads — batched or not — must keep routing to the donor, whose
        // copy stays authoritative until the boundary actually moves.
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(small());
        for i in 0..1_000u64 {
            let key = [(i % 256) as u8, (i / 256) as u8, i as u8];
            idx.set(&key, i);
        }
        let boundaries = idx.boundaries().into_boxed_slice();
        // Freeze a range straddling the shard-1/shard-2 edge, as a
        // mid-migration publication would.
        let freeze = Some((vec![0x50u8], vec![0x90u8]));
        {
            let _migration = idx.migration.lock();
            idx.begin_router_mutation();
            idx.publish_router(boundaries, freeze);
            idx.end_router_mutation();
        }
        let key_bytes: Vec<Vec<u8>> = (0..1_050u64)
            .step_by(7)
            .map(|i| vec![(i % 256) as u8, (i / 256) as u8, i as u8])
            .collect();
        let keys: Vec<&[u8]> = key_bytes.iter().map(|k| k.as_slice()).collect();
        let batched = idx.get_batch(&keys);
        for (i, key) in keys.iter().enumerate() {
            let expect = (key[0] as u64) + (key[1] as u64) * 256;
            if expect < 1_000 {
                assert_eq!(batched[i], Some(expect), "frozen-range key {key:?} lost");
            } else {
                assert_eq!(batched[i], None, "phantom value for {key:?}");
            }
        }
        // Unfreeze (publish the same boundaries without a freeze window) and
        // confirm the batch is identical.
        let boundaries = idx.boundaries().into_boxed_slice();
        {
            let _migration = idx.migration.lock();
            idx.begin_router_mutation();
            idx.publish_router(boundaries, None);
            idx.end_router_mutation();
        }
        assert_eq!(idx.get_batch(&keys), batched);
    }

    #[test]
    fn telemetry_covers_router_paths_migrations_and_shard_loads() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(small());
        for i in 0..1_000u64 {
            let key = [(i % 256) as u8, (i / 256) as u8, i as u8];
            idx.set(&key, i);
            idx.get(&key);
        }
        // Migration idle: every routed op took the biased fast entry.
        let fast_before = idx.metrics().router_fast_entries.get();
        assert!(fast_before >= 2_000, "ops served fast ({fast_before})");
        assert_eq!(idx.metrics().router_classic_entries.get(), 0);
        // The rebalancer's load signal and the telemetry series are the
        // same cells.
        assert_eq!(idx.op_counts().iter().sum::<u64>(), 2_000);
        // The shards' shared WormholeMetrics saw the structural churn.
        assert!(idx.wormhole_metrics().splits.get() > 0);

        // A migration runs classic sections and counts its batches/keys.
        let report = idx.migrate_boundary(1, &[0x70]).expect("viable target");
        assert!(report.batches > 0);
        assert_eq!(idx.metrics().migration_batches.get(), report.batches as u64);
        assert_eq!(
            idx.metrics().migration_moved_keys.get(),
            report.moved_keys as u64
        );

        // With the fast path disabled every routed op is a classic
        // critical-section entry.
        let classic: ShardedWormhole<u64> =
            ShardedWormhole::with_config(small().with_router_fast_path(false));
        classic.set(b"k", 1);
        classic.get(b"k");
        assert_eq!(classic.metrics().router_fast_entries.get(), 0);
        assert_eq!(classic.metrics().router_classic_entries.get(), 2);

        let registry = Registry::new();
        idx.register_metrics(&registry, "wh_shard");
        registry.lint().expect("names well-formed and unique");
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("wh_shard_migration_batches_total"),
            report.batches as u64
        );
        let per_shard: u64 = (0..idx.shard_count())
            .map(|i| snap.counter(&format!("wh_shard_shard{i}_ops_total")))
            .sum();
        assert_eq!(per_shard, idx.op_counts().iter().sum::<u64>());
        let text = snap.render();
        assert!(text.contains("wh_shard_router_fast_entries_total"));
        assert!(text.contains("wh_shard_wormhole_splits_total"));
        assert!(text.contains("wh_shard_router_epoch_section_entries_total"));
    }

    #[test]
    fn single_shard_degenerates_to_plain_wormhole() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::new(1);
        assert_eq!(idx.shard_count(), 1);
        assert!(idx.boundaries().is_empty());
        for i in 0..500u64 {
            idx.set(format!("k{i:04}").as_bytes(), i);
        }
        assert_eq!(idx.len(), 500);
        assert_eq!(idx.range_from(b"", usize::MAX).len(), 500);
        idx.check_invariants();
    }

    #[test]
    fn sampled_boundaries_balance_skewed_keys() {
        // All keys share a heavy prefix: even byte-splitting would put
        // everything in one shard, the sampled split balances it.
        let keys: Vec<Vec<u8>> = (0..4_000u32)
            .map(|i| format!("tenant-042/user-{i:05}").into_bytes())
            .collect();
        let idx: ShardedWormhole<u64> = ShardedWormhole::from_sample(4, &keys);
        assert_eq!(idx.shard_count(), 4);
        for (i, key) in keys.iter().enumerate() {
            idx.set(key, i as u64);
        }
        let max_shard = (0..4).map(|s| idx.shard(s).len()).max().unwrap();
        assert!(
            max_shard <= keys.len() / 2,
            "sampled boundaries failed to spread a skewed keyset (max shard {max_shard})"
        );
        idx.check_invariants();
    }
}
