//! The sharded index: boundary-key router, per-shard handles, and the
//! cross-shard scan cursor.

use index_traits::{ChainedSource, ConcurrentOrderedIndex, Cursor, CursorSource, IndexStats};
use wormhole::Wormhole;

use crate::config::ShardedConfig;

/// A range-partitioned front over `N` independent concurrent [`Wormhole`]
/// instances.
///
/// Point operations are one boundary lookup (a binary search over at most
/// `N - 1` cached boundary keys) plus the routed shard's own operation —
/// for reads, a lock-free optimistic lookup. Writers on different shards
/// share **no** state: each shard owns its MetaTrieHT writer mutex, its
/// QSBR domain, and its leaf locks, so structural modifications (splits,
/// merges, grace periods) on one shard never serialise writers on another.
///
/// See the [crate docs](crate) for the boundary invariants and the
/// cross-shard cursor's resume semantics.
pub struct ShardedWormhole<V> {
    /// The per-shard indexes, in boundary order. Cached here once at
    /// construction: routing hands out `&Wormhole<V>` without any
    /// indirection or locking.
    shards: Box<[Wormhole<V>]>,
    /// `shards.len() - 1` strictly ascending, non-empty boundary keys;
    /// shard `i` owns `[boundaries[i-1], boundaries[i])`.
    boundaries: Box<[Vec<u8>]>,
}

impl<V: Clone + Send + Sync + 'static> ShardedWormhole<V> {
    /// Creates an index with `shards` evenly byte-split shards and the
    /// default per-shard configuration ([`ShardedConfig::evenly`]).
    pub fn new(shards: usize) -> Self {
        Self::with_config(ShardedConfig::evenly(shards))
    }

    /// Creates an index from a full [`ShardedConfig`].
    pub fn with_config(config: ShardedConfig) -> Self {
        let (boundaries, inner) = config.into_parts();
        let shards: Vec<Wormhole<V>> = (0..boundaries.len() + 1)
            .map(|_| Wormhole::with_config(inner))
            .collect();
        Self {
            shards: shards.into_boxed_slice(),
            boundaries: boundaries.into_boxed_slice(),
        }
    }

    /// Creates an index whose boundaries are the quantiles of `sample`
    /// ([`ShardedConfig::from_sample`]): the go-to constructor when a
    /// representative slice of the expected keyset is at hand.
    pub fn from_sample<K: AsRef<[u8]>>(shards: usize, sample: &[K]) -> Self {
        Self::with_config(ShardedConfig::from_sample(shards, sample))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The boundary keys, strictly ascending (`shard_count() - 1` entries).
    pub fn boundaries(&self) -> &[Vec<u8>] {
        &self.boundaries
    }

    /// Index of the shard owning `key`: the number of boundaries `<= key`.
    #[inline]
    pub fn shard_for(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }

    /// Handle to shard `i` (boundary order).
    pub fn shard(&self, i: usize) -> &Wormhole<V> {
        &self.shards[i]
    }

    /// Handle to the shard owning `key` — the router composed with
    /// [`ShardedWormhole::shard`].
    #[inline]
    pub fn shard_of(&self, key: &[u8]) -> &Wormhole<V> {
        &self.shards[self.shard_for(key)]
    }

    /// Total leaf nodes across every shard.
    pub fn leaf_count(&self) -> usize {
        self.shards.iter().map(Wormhole::leaf_count).sum()
    }

    /// Deferred-reclamation callbacks still queued across every shard.
    pub fn pending_reclamation(&self) -> usize {
        self.shards.iter().map(Wormhole::pending_reclamation).sum()
    }

    /// Validates every shard's structural invariants plus the partition
    /// invariant: each shard holds only keys inside its boundary range
    /// (tests only — walks every key).
    pub fn check_invariants(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            shard.check_invariants();
            let lower = (i > 0).then(|| self.boundaries[i - 1].as_slice());
            let upper = self.boundaries.get(i).map(Vec::as_slice);
            let mut cursor = shard.scan(b"");
            while let Some((key, _)) = cursor.next() {
                if let Some(lower) = lower {
                    assert!(key >= lower, "shard {i} holds key below its lower boundary");
                }
                if let Some(upper) = upper {
                    assert!(
                        key < upper,
                        "shard {i} holds key at/above its upper boundary"
                    );
                }
            }
        }
    }
}

impl<V: Clone + Send + Sync + 'static> ConcurrentOrderedIndex<V> for ShardedWormhole<V> {
    fn name(&self) -> &'static str {
        "wormhole-sharded"
    }

    fn get(&self, key: &[u8]) -> Option<V> {
        self.shard_of(key).get(key)
    }

    fn set(&self, key: &[u8], value: V) -> Option<V> {
        self.shard_of(key).set(key, value)
    }

    fn del(&self, key: &[u8]) -> Option<V> {
        self.shard_of(key).del(key)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)> {
        let mut out: Vec<(Vec<u8>, V)> = Vec::with_capacity(count.min(1024));
        if count == 0 {
            return out;
        }
        self.scan(start).collect_next(count, &mut out);
        out
    }

    /// Opens a cross-shard streaming cursor: per-shard cursors chained in
    /// boundary order.
    ///
    /// The first segment is the owning shard's cursor opened at `start`;
    /// each subsequent shard's cursor is opened lazily at that shard's
    /// lower boundary once the stream crosses the edge. Range partitioning
    /// makes the concatenation globally ordered (every key of shard `i + 1`
    /// is `>=` its boundary, which is `>` every key of shard `i`), each
    /// batch keeps the per-shard cursor's seqlock-validated one-leaf
    /// atomicity, and [`Cursor::resume_key`] needs no shard awareness at
    /// all — resuming routes the reported key to exactly the shard the
    /// stream stopped in.
    fn scan<'a>(&'a self, start: &[u8]) -> Cursor<'a, V>
    where
        V: Clone + 'a,
    {
        let shards: &'a [Wormhole<V>] = &self.shards;
        let boundaries: &'a [Vec<u8>] = &self.boundaries;
        let mut next = self.shard_for(start);
        let mut first_start = Some(start.to_vec());
        let factory = move || -> Option<Box<dyn CursorSource<V> + 'a>> {
            let shard = shards.get(next)?;
            let segment: Box<dyn CursorSource<V> + 'a> = match first_start.take() {
                Some(from) => Box::new(shard.scan(&from)),
                // Later shards start at their own lower boundary; every key
                // already streamed from earlier shards is below it.
                None => Box::new(shard.scan(&boundaries[next - 1])),
            };
            next += 1;
            Some(segment)
        };
        Cursor::new(start, Box::new(ChainedSource::new(Box::new(factory))))
    }

    fn stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for shard in self.shards.iter() {
            let s = shard.stats();
            total.keys += s.keys;
            total.structure_bytes += s.structure_bytes;
            total.key_bytes += s.key_bytes;
            total.value_bytes += s.value_bytes;
        }
        // The boundary table is index structure too.
        total.structure_bytes += self.boundaries.iter().map(Vec::len).sum::<usize>();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole::WormholeConfig;

    fn small() -> ShardedConfig {
        ShardedConfig::evenly(4).with_inner(WormholeConfig::optimized().with_leaf_capacity(8))
    }

    #[test]
    fn empty_index() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(small());
        assert_eq!(idx.shard_count(), 4);
        assert!(idx.is_empty());
        assert_eq!(idx.get(b"missing"), None);
        assert_eq!(idx.del(b"missing"), None);
        assert!(idx.range_from(b"", 10).is_empty());
        idx.check_invariants();
    }

    #[test]
    fn routing_respects_boundaries() {
        let idx: ShardedWormhole<u64> =
            ShardedWormhole::with_config(ShardedConfig::with_boundaries(vec![
                b"g".to_vec(),
                b"n".to_vec(),
                b"t".to_vec(),
            ]));
        assert_eq!(idx.shard_for(b""), 0);
        assert_eq!(idx.shard_for(b"f"), 0);
        assert_eq!(idx.shard_for(b"g"), 1, "boundary key belongs to the right");
        assert_eq!(idx.shard_for(b"mzzz"), 1);
        assert_eq!(idx.shard_for(b"n"), 2);
        assert_eq!(idx.shard_for(b"zzz"), 3);
        assert!(std::ptr::eq(idx.shard_of(b"f"), idx.shard(0)));
        assert!(std::ptr::eq(idx.shard_of(b"zzz"), idx.shard(3)));
    }

    #[test]
    fn crud_routes_and_sums() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(small());
        for i in 0..2_000u64 {
            // First bytes spread over the whole byte space.
            let key = [(i % 256) as u8, (i / 256) as u8, i as u8];
            assert_eq!(idx.set(&key, i), None);
        }
        assert_eq!(idx.len(), 2_000);
        // All four shards actually hold data.
        for s in 0..idx.shard_count() {
            assert!(idx.shard(s).len() > 0, "shard {s} empty");
        }
        for i in 0..2_000u64 {
            let key = [(i % 256) as u8, (i / 256) as u8, i as u8];
            assert_eq!(idx.get(&key), Some(i));
        }
        idx.check_invariants();
        for i in (0..2_000u64).step_by(2) {
            let key = [(i % 256) as u8, (i / 256) as u8, i as u8];
            assert_eq!(idx.del(&key), Some(i));
        }
        assert_eq!(idx.len(), 1_000);
        let stats = idx.stats();
        assert_eq!(stats.keys, 1_000);
        assert!(stats.structure_bytes > 0);
        idx.check_invariants();
    }

    #[test]
    fn cross_shard_scan_is_globally_ordered() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(small());
        for i in 0..1_500u64 {
            let key = format!("{:03}-{i:05}", i * 7 % 256);
            idx.set(key.as_bytes(), i);
        }
        let all = idx.range_from(b"", usize::MAX);
        assert_eq!(all.len(), 1_500);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan unordered");
        // Windows starting inside every shard agree with the full drain.
        for start in [&b""[..], b"0", b"064", b"128", b"192", b"255", b"zzz"] {
            let want: Vec<_> = all
                .iter()
                .filter(|(k, _)| k.as_slice() >= start)
                .take(40)
                .cloned()
                .collect();
            assert_eq!(idx.range_from(start, 40), want, "start={start:?}");
        }
    }

    #[test]
    fn cursor_resume_crosses_shard_edges() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::with_config(small());
        for i in 0..256u64 {
            idx.set(&[i as u8, b'x'], i);
        }
        // Drain in windows of 10 through resume keys: every window lands on
        // or crosses shard edges at 64/128/192.
        let mut seen = Vec::new();
        let mut resume = Vec::new();
        loop {
            let mut cursor = idx.scan(&resume);
            let mut window = Vec::new();
            if cursor.collect_next(10, &mut window) == 0 {
                break;
            }
            resume = cursor.resume_key();
            seen.extend(window);
        }
        assert_eq!(seen.len(), 256);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(seen.first().unwrap().1, 0);
        assert_eq!(seen.last().unwrap().1, 255);
    }

    #[test]
    fn single_shard_degenerates_to_plain_wormhole() {
        let idx: ShardedWormhole<u64> = ShardedWormhole::new(1);
        assert_eq!(idx.shard_count(), 1);
        assert!(idx.boundaries().is_empty());
        for i in 0..500u64 {
            idx.set(format!("k{i:04}").as_bytes(), i);
        }
        assert_eq!(idx.len(), 500);
        assert_eq!(idx.range_from(b"", usize::MAX).len(), 500);
        idx.check_invariants();
    }

    #[test]
    fn sampled_boundaries_balance_skewed_keys() {
        // All keys share a heavy prefix: even byte-splitting would put
        // everything in one shard, the sampled split balances it.
        let keys: Vec<Vec<u8>> = (0..4_000u32)
            .map(|i| format!("tenant-042/user-{i:05}").into_bytes())
            .collect();
        let idx: ShardedWormhole<u64> = ShardedWormhole::from_sample(4, &keys);
        assert_eq!(idx.shard_count(), 4);
        for (i, key) in keys.iter().enumerate() {
            idx.set(key, i as u64);
        }
        let max_shard = (0..4).map(|s| idx.shard(s).len()).max().unwrap();
        assert!(
            max_shard <= keys.len() / 2,
            "sampled boundaries failed to spread a skewed keyset (max shard {max_shard})"
        );
        idx.check_invariants();
    }
}
