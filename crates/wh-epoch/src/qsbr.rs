//! The QSBR domain, reader handles, and grace-period machinery.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use wh_telemetry::{Counter, Gauge, Histogram, Registry};

/// A queued reclamation callback and the epoch it was queued at.
type DeferredCallback = (u64, Box<dyn FnOnce() + Send>);

/// Telemetry for one QSBR domain. Handles are `Arc`-shared with whatever
/// [`Registry`] they are registered into, so the domain records into the
/// same cells an exposition reads.
///
/// The section-entry counter is **load-bearing** (regression tests pin hot
/// paths to "zero new entries" through it) and therefore live even under
/// `telemetry-off`; only the histograms are subject to the kill switches.
#[derive(Clone, Debug, Default)]
pub struct EpochMetrics {
    /// Classic critical-section entries, domain-wide (fast entries do not
    /// count — that is the point of the biased fast path).
    pub section_entries: Counter,
    /// Nanoseconds spent waiting for grace periods to complete
    /// (`synchronize` / `wait_grace`), including the deferred-callback
    /// drain that rides on them.
    pub grace_wait_ns: Histogram,
    /// Nanoseconds spent in [`Qsbr::drain_barrier`]: bias revocation,
    /// waiting out in-flight fast sections, and the trailing grace period.
    pub drain_barrier_ns: Histogram,
    /// Instantaneous deferred-callback queue depth; its high-water mark
    /// records the worst backlog between flushes.
    pub deferred_depth: Gauge,
}

impl EpochMetrics {
    /// Registers every metric under `<prefix>_…` names (prefix must match
    /// `[a-z0-9_]+`, e.g. `wh_epoch_router`).
    pub fn register_into(&self, registry: &Registry, prefix: &str) {
        registry.register_counter(
            &format!("{prefix}_section_entries_total"),
            &self.section_entries,
        );
        registry.register_histogram(&format!("{prefix}_grace_wait_ns"), &self.grace_wait_ns);
        registry.register_histogram(
            &format!("{prefix}_drain_barrier_ns"),
            &self.drain_barrier_ns,
        );
        registry.register_gauge(&format!("{prefix}_deferred_depth"), &self.deferred_depth);
    }
}

/// Per-reader-thread state tracked by the domain.
#[derive(Debug)]
struct ThreadState {
    /// `true` while the thread is inside a read-side critical section.
    active: AtomicBool,
    /// Epoch of the most recent quiescent state announced by the thread.
    local_epoch: AtomicU64,
    /// Biased fast-section generation: odd while the thread is inside a
    /// [`FastGuard`] section, even otherwise. Only the owning thread writes
    /// it; [`Qsbr::drain_barrier`] spins on it becoming even.
    fast_gen: AtomicU64,
    /// Unique id used to exclude the caller in `synchronize_excluding`.
    id: u64,
}

/// Shared state of a QSBR domain.
#[derive(Default)]
struct Shared {
    /// Unique id of this domain (used by the thread-local handle cache).
    domain_id: u64,
    /// Monotonically increasing grace-period counter.
    global_epoch: AtomicU64,
    /// All registered reader threads.
    threads: Mutex<Vec<Arc<ThreadState>>>,
    /// Deferred destructors: (epoch at which they were queued, callback).
    deferred: Mutex<Vec<DeferredCallback>>,
    /// Notified whenever a reader announces a quiescent state, so writers
    /// waiting in `synchronize` do not have to spin.
    quiesce_cv: Condvar,
    /// Mutex paired with `quiesce_cv` (holds nothing, used only for waiting).
    quiesce_lock: Mutex<()>,
    /// Number of threads currently blocked on `quiesce_cv`. Readers leaving a
    /// critical section only `notify_all` when this is non-zero, so
    /// uncontended exits are store-only. Waiters increment it *before*
    /// re-checking their condition under `quiesce_lock`; combined with the
    /// SeqCst store/load pairing this forms the classic flag/flag handshake:
    /// either the exiting reader sees the waiter (and notifies) or the waiter
    /// sees the reader's updated state (and never sleeps). The 1ms timed wait
    /// bounds the damage of any platform surprise to a single tick.
    waiters: AtomicU64,
    /// `true` while the domain is *biased*: no retirement is in progress, so
    /// [`QsbrHandle::try_fast`] entries may elide the critical-section
    /// bookkeeping entirely. Revoked by [`Qsbr::drain_barrier`] before any
    /// publication that will retire shared state; restored by
    /// [`Qsbr::resume_bias`]. Domains start unbiased — owners opt in.
    bias: AtomicBool,
    /// Source of reader ids.
    next_id: AtomicU64,
    /// Domain telemetry (see [`EpochMetrics`]).
    metrics: EpochMetrics,
}

impl Drop for Shared {
    fn drop(&mut self) {
        // The domain is going away: no handle (and therefore no reader)
        // exists any more, so every pending grace period has trivially
        // elapsed. Run — don't leak — the callbacks that were deferred after
        // the last `synchronize`, e.g. ones queued after the final reader
        // unregistered.
        let callbacks: Vec<DeferredCallback> = self.deferred.get_mut().drain(..).collect();
        self.metrics.deferred_depth.set(0);
        for (_, f) in callbacks {
            f();
        }
    }
}

/// A quiescent-state-based reclamation domain.
///
/// Cloning a `Qsbr` produces another handle to the same domain (the state is
/// reference-counted), so an index can embed one and hand clones to helper
/// structures.
#[derive(Clone, Default)]
pub struct Qsbr {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Qsbr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Qsbr")
            .field(
                "global_epoch",
                &self.shared.global_epoch.load(Ordering::Relaxed),
            )
            .field("readers", &self.readers())
            .field("pending", &self.pending())
            .finish()
    }
}

/// Source of unique domain ids.
static NEXT_DOMAIN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache of reader handles, keyed by domain id. Registering a
    /// reader takes a lock on the domain's thread list, so callers that
    /// cannot conveniently hold a handle (e.g. trait methods taking `&self`)
    /// use this cache instead of re-registering on every operation. Handles
    /// are boxed so their addresses stay stable when the cache vector grows.
    static LOCAL_HANDLES: std::cell::RefCell<Vec<(u64, Box<QsbrHandle>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Qsbr {
    /// Creates a new, empty domain.
    pub fn new() -> Self {
        let shared = Shared {
            domain_id: NEXT_DOMAIN_ID.fetch_add(1, Ordering::Relaxed),
            global_epoch: AtomicU64::new(0),
            threads: Mutex::new(Vec::new()),
            deferred: Mutex::new(Vec::new()),
            quiesce_cv: Condvar::new(),
            quiesce_lock: Mutex::new(()),
            waiters: AtomicU64::new(0),
            bias: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            metrics: EpochMetrics::default(),
        };
        Self {
            shared: Arc::new(shared),
        }
    }

    /// Runs `f` with this thread's cached reader handle for the domain,
    /// registering one on first use.
    ///
    /// The cached handle stays registered for the lifetime of the thread (or
    /// until the domain is dropped by its last owner), which mirrors how
    /// long-lived worker threads use QSBR in practice.
    pub fn with_local_handle<R>(&self, f: impl FnOnce(&QsbrHandle) -> R) -> R {
        let id = self.shared.domain_id;
        LOCAL_HANDLES.with(|cell| {
            let handle_ptr: *const QsbrHandle = {
                let mut handles = cell.borrow_mut();
                match handles.iter().find(|(hid, _)| *hid == id) {
                    Some((_, handle)) => handle.as_ref(),
                    None => {
                        handles.push((id, Box::new(self.register())));
                        handles.last().unwrap().1.as_ref()
                    }
                }
                // The RefCell borrow ends here so `f` may recurse into
                // `with_local_handle` for another domain.
            };
            // SAFETY: the handle is heap-allocated (boxed), entries are never
            // removed while the thread lives, and the cache is thread-local,
            // so the pointee is valid and not aliased mutably for the
            // duration of `f`.
            f(unsafe { &*handle_ptr })
        })
    }

    /// Registers the calling thread as a reader and returns its handle.
    pub fn register(&self) -> QsbrHandle {
        let state = Arc::new(ThreadState {
            active: AtomicBool::new(false),
            local_epoch: AtomicU64::new(self.shared.global_epoch.load(Ordering::SeqCst)),
            fast_gen: AtomicU64::new(0),
            id: self.shared.next_id.fetch_add(1, Ordering::Relaxed),
        });
        self.shared.threads.lock().push(Arc::clone(&state));
        QsbrHandle {
            shared: Arc::clone(&self.shared),
            state,
            _not_sync: std::marker::PhantomData,
        }
    }

    /// This domain's telemetry handles (register them into a
    /// [`Registry`] via [`EpochMetrics::register_into`]).
    pub fn metrics(&self) -> &EpochMetrics {
        &self.shared.metrics
    }

    /// Number of currently registered reader threads.
    pub fn readers(&self) -> usize {
        self.shared.threads.lock().len()
    }

    /// Waits until every registered reader has passed through a quiescent
    /// state (or is currently quiescent) after this call began.
    ///
    /// The calling thread must not be inside one of its own read-side
    /// critical sections, otherwise the wait would deadlock; use
    /// [`Qsbr::synchronize_excluding`] when the caller holds a registered
    /// handle and wants it ignored.
    pub fn synchronize(&self) {
        self.synchronize_inner(None);
    }

    /// Like [`Qsbr::synchronize`], but ignores the reader represented by
    /// `handle` (typically the calling thread's own registration).
    pub fn synchronize_excluding(&self, handle: &QsbrHandle) {
        self.synchronize_inner(Some(handle.state.id));
    }

    /// Starts a grace period *without waiting for it*, returning a token
    /// for [`Qsbr::wait_grace`]. Together they form an asynchronous grace
    /// period: start it at publication time, do other work, and wait only
    /// when the retired object is actually needed — by which point every
    /// reader has usually announced quiescence and the wait is free.
    pub fn start_grace(&self) -> u64 {
        self.shared.global_epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Completes the grace period started by the [`Qsbr::start_grace`] that
    /// returned `target`: returns once every reader registered now has
    /// either announced a quiescent state since that call or is currently
    /// outside any critical section. Also runs reclamation callbacks
    /// deferred at or before `target`. The caller must not be inside one of
    /// its own read-side critical sections.
    pub fn wait_grace(&self, target: u64) {
        self.wait_grace_inner(target, None);
    }

    /// Non-blocking probe of the grace period started by the
    /// [`Qsbr::start_grace`] that returned `target`: `true` when every
    /// registered reader has already passed it (a subsequent
    /// [`Qsbr::wait_grace`] would return without waiting). Unlike
    /// `wait_grace` this runs no deferred callbacks — it only observes.
    ///
    /// The asynchronous-grace users call this to *account* for how often
    /// the start-early/wait-late pattern made the wait free (e.g. the shard
    /// migration engine reports elapsed-for-free vs blocking grace waits).
    pub fn grace_elapsed(&self, target: u64) -> bool {
        self.shared.threads.lock().iter().all(|t| {
            !t.active.load(Ordering::SeqCst) || t.local_epoch.load(Ordering::SeqCst) >= target
        })
    }

    /// Whether the domain is currently biased (fast entries allowed).
    pub fn biased(&self) -> bool {
        self.shared.bias.load(Ordering::SeqCst)
    }

    /// Re-enables biased fast entries after the retirements that prompted
    /// [`Qsbr::drain_barrier`] have completed (i.e. every retired object's
    /// grace period has been waited out and no further swap of the protected
    /// pointer(s) will happen until the next `drain_barrier`).
    ///
    /// The `SeqCst` store pairs with the `Acquire`-or-stronger flag load in
    /// [`QsbrHandle::try_fast`]: a fast reader that observes the bias also
    /// observes every write sequenced before this call — in particular the
    /// final publication of the now-stable protected pointer.
    pub fn resume_bias(&self) {
        self.shared.bias.store(true, Ordering::SeqCst);
    }

    /// Revokes biased fast entries and waits until no thread is still inside
    /// one, then forces a full grace period for classic critical sections.
    ///
    /// After this returns (and until [`Qsbr::resume_bias`]) the domain is in
    /// the slow-path regime: every reader goes through
    /// [`QsbrHandle::enter`]-style critical sections, so the usual
    /// publish-then-`synchronize`/`defer` protocol is safe again. Call this
    /// *before the first* publication that will retire shared state.
    ///
    /// Ordering argument (a store/store + fence Dekker): a fast entry stores
    /// its odd generation, executes a `SeqCst` fence, then loads the bias
    /// flag; the barrier stores `bias = false`, executes a `SeqCst` fence,
    /// then loads the generations. Both fences are in the single total order
    /// of SC operations, so either the reader's fence is first — the barrier
    /// then observes the odd generation and spins until the `Release` store
    /// of the even generation (whose `Acquire` load orders the reader's table
    /// use before the barrier's return) — or the barrier's fence is first and
    /// the reader's flag load observes `false`, declining into the slow path.
    /// Either way no fast section that began before the barrier survives it,
    /// and none can begin after it.
    ///
    /// Threads that register mid-barrier are also covered: registration
    /// acquires the thread-list lock after this call's clone of the list
    /// released it, which makes the `bias = false` store visible to any fast
    /// entry the new thread attempts.
    pub fn drain_barrier(&self) {
        let timing = wh_telemetry::start_timing();
        self.shared.bias.store(false, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let threads: Vec<Arc<ThreadState>> = self.shared.threads.lock().clone();
        for t in threads {
            let mut spins = 0u32;
            while t.fast_gen.load(Ordering::Acquire) & 1 == 1 {
                // Fast sections are a few loads long; an odd generation that
                // persists means the reader was preempted mid-section. Yield
                // first, then back off to timed sleeps (no condvar here —
                // fast exits are store-only by design and never notify).
                if spins < 64 {
                    spins += 1;
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
        }
        // Fast sections are drained; now order against classic critical
        // sections that were already inside `enter` when the flag flipped.
        self.synchronize();
        self.shared.metrics.drain_barrier_ns.record_elapsed(timing);
    }

    fn synchronize_inner(&self, exclude: Option<u64>) {
        // Start a new grace period. Readers that announce a quiescent state
        // after this point will carry an epoch >= `target`.
        let target = self.start_grace();
        self.wait_grace_inner(target, exclude);
    }

    fn wait_grace_inner(&self, target: u64, exclude: Option<u64>) {
        let timing = wh_telemetry::start_timing();
        let threads: Vec<Arc<ThreadState>> = self.shared.threads.lock().clone();
        for t in threads {
            if Some(t.id) == exclude {
                continue;
            }
            let mut spins = 0u32;
            loop {
                // A reader counts as having passed the grace period when it is
                // either outside any critical section *right now* (it will see
                // the new pointer when it re-enters), or it has announced a
                // quiescent state with an epoch at or beyond the target.
                if !t.active.load(Ordering::SeqCst)
                    || t.local_epoch.load(Ordering::SeqCst) >= target
                {
                    break;
                }
                // Read-side critical sections never block, so an active flag
                // almost always means the reader was *preempted* mid-section
                // (common on oversubscribed hosts, where this wait is on the
                // scheduling latency, not the section length). Hand it the
                // CPU a few times before falling back to timed sleeps.
                if spins < 64 {
                    spins += 1;
                    std::thread::yield_now();
                    continue;
                }
                // Announce the waiter *before* the locked re-check: an exiting
                // reader stores its state and then loads `waiters` (both
                // SeqCst), so either it observes our increment and notifies,
                // or its state update is visible to the re-check below.
                self.shared.waiters.fetch_add(1, Ordering::SeqCst);
                let mut g = self.shared.quiesce_lock.lock();
                // Re-check under the lock to avoid missing a wakeup.
                if !t.active.load(Ordering::SeqCst)
                    || t.local_epoch.load(Ordering::SeqCst) >= target
                {
                    self.shared.waiters.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
                self.shared
                    .quiesce_cv
                    .wait_for(&mut g, std::time::Duration::from_millis(1));
                drop(g);
                self.shared.waiters.fetch_sub(1, Ordering::SeqCst);
            }
        }
        self.run_deferred_up_to(target);
        self.shared.metrics.grace_wait_ns.record_elapsed(timing);
    }

    /// Queues `f` to run after a future grace period.
    pub fn defer(&self, f: Box<dyn FnOnce() + Send>) {
        let epoch = self.shared.global_epoch.load(Ordering::SeqCst) + 1;
        let mut q = self.shared.deferred.lock();
        q.push((epoch, f));
        // Published under the queue lock, so the gauge never goes stale
        // against a concurrent drain's own update.
        self.shared.metrics.deferred_depth.set(q.len() as u64);
    }

    /// Runs all deferred callbacks after forcing a grace period.
    pub fn flush(&self) {
        self.synchronize();
    }

    /// Number of callbacks still waiting for a grace period.
    pub fn pending(&self) -> usize {
        self.shared.deferred.lock().len()
    }

    fn run_deferred_up_to(&self, epoch: u64) {
        let ready: Vec<Box<dyn FnOnce() + Send>> = {
            let mut q = self.shared.deferred.lock();
            let mut ready = Vec::new();
            let mut i = 0;
            while i < q.len() {
                if q[i].0 <= epoch {
                    ready.push(q.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            self.shared.metrics.deferred_depth.set(q.len() as u64);
            ready
        };
        for f in ready {
            f();
        }
    }
}

/// A registered reader thread's handle to a [`Qsbr`] domain.
///
/// The handle is `Send` (it can be created on one thread and moved to the
/// worker that will use it) but deliberately not `Sync`: each reader thread
/// owns exactly one handle.
pub struct QsbrHandle {
    shared: Arc<Shared>,
    state: Arc<ThreadState>,
    /// Keeps the handle `!Sync` (one reader thread per handle — the
    /// `fast_gen` protocol relies on single-writer generations) now that
    /// the section-entry count lives in the domain-wide [`EpochMetrics`].
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

impl std::fmt::Debug for QsbrHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QsbrHandle")
            .field("id", &self.state.id)
            .field("active", &self.state.active.load(Ordering::Relaxed))
            .finish()
    }
}

impl QsbrHandle {
    /// Enters a read-side critical section and returns an RAII guard.
    ///
    /// While the guard is alive, objects observed through RCU-protected
    /// pointers remain valid. Dropping the guard announces a quiescent state.
    #[inline]
    pub fn enter(&self) -> Guard<'_> {
        self.state.active.store(true, Ordering::SeqCst);
        self.shared.metrics.section_entries.inc();
        Guard { handle: self }
    }

    /// Runs `f` inside a read-side critical section.
    #[inline]
    pub fn critical<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.enter();
        f()
    }

    /// Attempts a *biased* fast entry: succeeds only while the domain is
    /// biased (no retirement in progress, see [`Qsbr::resume_bias`]), in
    /// which case the returned guard protects RCU-dereferenced pointers with
    /// one relaxed store, one fence, and one flag load — no critical-section
    /// bookkeeping, no grace-period participation, no notify on exit.
    /// Returns `None` when the domain is unbiased; the caller must fall back
    /// to [`QsbrHandle::enter`].
    ///
    /// Soundness contract for the domain owner: every publication that
    /// retires shared state must be preceded by [`Qsbr::drain_barrier`]
    /// since the last [`Qsbr::resume_bias`]. Under that contract a fast
    /// section can only observe pointers that no in-progress retirement will
    /// free (the ordering argument lives on `drain_barrier`).
    #[inline]
    pub fn try_fast(&self) -> Option<FastGuard<'_>> {
        let odd = self.state.fast_gen.load(Ordering::Relaxed).wrapping_add(1);
        self.state.fast_gen.store(odd, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        if self.shared.bias.load(Ordering::SeqCst) {
            Some(FastGuard {
                handle: self,
                exit_gen: odd.wrapping_add(1),
            })
        } else {
            // Declined: restore an even generation so a concurrent barrier
            // does not wait on a section that never materialised.
            self.state
                .fast_gen
                .store(odd.wrapping_add(1), Ordering::Release);
            None
        }
    }

    /// Number of classic critical-section entries made in this handle's
    /// *domain* (the telemetry counter is the single source of truth; the
    /// per-handle count this used to return is gone).
    ///
    /// Diagnostic for tests asserting that a biased hot path stays out of
    /// critical sections; fast entries are not counted.
    pub fn section_entries(&self) -> u64 {
        self.shared.metrics.section_entries.get()
    }

    /// Explicitly announces a quiescent state outside any critical section.
    #[inline]
    pub fn quiescent(&self) {
        let epoch = self.shared.global_epoch.load(Ordering::SeqCst);
        self.state.local_epoch.store(epoch, Ordering::SeqCst);
        if self.shared.waiters.load(Ordering::SeqCst) != 0 {
            self.shared.quiesce_cv.notify_all();
        }
    }
}

impl Drop for QsbrHandle {
    fn drop(&mut self) {
        // Unregister: remove this thread's state from the domain so writers
        // stop waiting on it.
        let mut threads = self.shared.threads.lock();
        threads.retain(|t| t.id != self.state.id);
        drop(threads);
        if self.shared.waiters.load(Ordering::SeqCst) != 0 {
            self.shared.quiesce_cv.notify_all();
        }
    }
}

/// RAII guard for a read-side critical section.
#[derive(Debug)]
pub struct Guard<'a> {
    handle: &'a QsbrHandle,
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let state = &self.handle.state;
        let shared = &self.handle.shared;
        // Leaving the critical section is itself a quiescent state.
        let epoch = shared.global_epoch.load(Ordering::SeqCst);
        state.local_epoch.store(epoch, Ordering::SeqCst);
        state.active.store(false, Ordering::SeqCst);
        // Only wake grace-period waiters that actually exist: the SeqCst
        // store above + SeqCst load here pair with the waiter's SeqCst
        // increment-then-recheck, so a missed notify implies the waiter saw
        // our exit. Uncontended drops stay store-only.
        if shared.waiters.load(Ordering::SeqCst) != 0 {
            shared.quiesce_cv.notify_all();
        }
    }
}

/// RAII guard for a *biased* fast read section (see
/// [`QsbrHandle::try_fast`]). Exiting is a single `Release` store.
#[derive(Debug)]
pub struct FastGuard<'a> {
    handle: &'a QsbrHandle,
    exit_gen: u64,
}

impl Drop for FastGuard<'_> {
    fn drop(&mut self) {
        // Release: a drain barrier that Acquire-loads this even generation
        // orders every read in the section before the barrier's return.
        self.handle
            .state
            .fast_gen
            .store(self.exit_gen, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc as StdArc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn register_and_drop_changes_reader_count() {
        let q = Qsbr::new();
        assert_eq!(q.readers(), 0);
        let h1 = q.register();
        let h2 = q.register();
        assert_eq!(q.readers(), 2);
        drop(h1);
        assert_eq!(q.readers(), 1);
        drop(h2);
        assert_eq!(q.readers(), 0);
    }

    #[test]
    fn synchronize_with_no_readers_returns_immediately() {
        let q = Qsbr::new();
        q.synchronize();
        q.synchronize();
    }

    #[test]
    fn synchronize_waits_for_active_reader() {
        let q = Qsbr::new();
        let h = q.register();
        let entered = StdArc::new(AtomicBool::new(false));
        let released = StdArc::new(AtomicBool::new(false));
        let done = StdArc::new(AtomicBool::new(false));

        let q2 = q.clone();
        let entered2 = StdArc::clone(&entered);
        let released2 = StdArc::clone(&released);
        let reader = thread::spawn(move || {
            let guard = h.enter();
            entered2.store(true, Ordering::SeqCst);
            while !released2.load(Ordering::SeqCst) {
                thread::sleep(Duration::from_millis(1));
            }
            drop(guard);
            // Keep the handle alive a bit so unregistration is not what
            // unblocks the writer.
            thread::sleep(Duration::from_millis(20));
            drop(h);
        });

        while !entered.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(1));
        }
        let done2 = StdArc::clone(&done);
        let writer = thread::spawn(move || {
            q2.synchronize();
            done2.store(true, Ordering::SeqCst);
        });
        // The writer must not complete while the reader is still inside the
        // critical section.
        thread::sleep(Duration::from_millis(30));
        assert!(!done.load(Ordering::SeqCst));
        released.store(true, Ordering::SeqCst);
        writer.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
        reader.join().unwrap();
    }

    #[test]
    fn inactive_reader_does_not_block_writer() {
        let q = Qsbr::new();
        let _h = q.register();
        // The reader never enters a critical section; synchronize must return.
        q.synchronize();
    }

    #[test]
    fn deferred_callbacks_run_after_flush() {
        let q = Qsbr::new();
        let counter = StdArc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let c = StdArc::clone(&counter);
            q.defer(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert_eq!(q.pending(), 5);
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        q.flush();
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn deferred_callbacks_run_on_domain_drop() {
        // Callbacks queued after the last reader unregistered (so no future
        // `synchronize` will ever run) must still execute when the domain
        // itself is dropped — otherwise the deferred reclamation leaks.
        let ran = StdArc::new(AtomicUsize::new(0));
        {
            let q = Qsbr::new();
            let h = q.register();
            let guard = h.enter();
            drop(guard);
            drop(h);
            assert_eq!(q.readers(), 0);
            for _ in 0..3 {
                let c = StdArc::clone(&ran);
                q.defer(Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }));
            }
            assert_eq!(q.pending(), 3);
            assert_eq!(ran.load(Ordering::SeqCst), 0);
        }
        assert_eq!(ran.load(Ordering::SeqCst), 3, "domain drop must flush");
    }

    #[test]
    fn deferred_callbacks_run_when_last_handle_outlives_domain() {
        // A reader handle keeps the shared domain state alive; the flush
        // must happen when the *last* owner (here, the handle) goes away.
        let ran = StdArc::new(AtomicUsize::new(0));
        let h = {
            let q = Qsbr::new();
            let h = q.register();
            let c = StdArc::clone(&ran);
            q.defer(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
            h
        };
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        drop(h);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn rcu_pointer_swap_is_safe_under_load() {
        use std::sync::atomic::AtomicPtr;

        // A miniature RCU usage mirroring the MetaTrieHT double-table scheme:
        // readers dereference an atomic pointer inside a critical section,
        // a writer swaps it and waits for a grace period before freeing.
        let q = Qsbr::new();
        let initial = Box::into_raw(Box::new(vec![1u64; 64]));
        let ptr = StdArc::new(AtomicPtr::new(initial));
        let stop = StdArc::new(AtomicBool::new(false));

        let mut readers = Vec::new();
        for _ in 0..4 {
            let q = q.clone();
            let ptr = StdArc::clone(&ptr);
            let stop = StdArc::clone(&stop);
            readers.push(thread::spawn(move || {
                let h = q.register();
                let mut checksum = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let guard = h.enter();
                    let p = ptr.load(Ordering::SeqCst);
                    // SAFETY: the writer only frees a table after a grace
                    // period; we hold a critical section, so `p` is valid.
                    let v = unsafe { &*p };
                    checksum = checksum.wrapping_add(v[0]);
                    drop(guard);
                }
                checksum
            }));
        }

        for gen in 2u64..30 {
            let new = Box::into_raw(Box::new(vec![gen; 64]));
            let old = ptr.swap(new, Ordering::SeqCst);
            q.synchronize();
            // SAFETY: all readers have passed a quiescent state since the
            // swap, so nobody holds a reference into `old`.
            unsafe { drop(Box::from_raw(old)) };
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            let _ = r.join().unwrap();
        }
        let last = ptr.load(Ordering::SeqCst);
        // SAFETY: all readers have exited.
        unsafe { drop(Box::from_raw(last)) };
    }

    #[test]
    fn synchronize_excluding_skips_callers_own_critical_section() {
        let q = Qsbr::new();
        let h = q.register();
        let _guard = h.enter();
        // Would deadlock if the caller's own active section were considered.
        q.synchronize_excluding(&h);
    }

    #[test]
    fn asynchronous_grace_period_completes_after_reader_quiesces() {
        let q = Qsbr::new();
        let h = q.register();
        // Reader active at start_grace: the grace period must not be
        // considered complete until it exits its critical section.
        let guard = h.enter();
        let target = q.start_grace();
        drop(guard); // quiescent state after the grace period began
        q.wait_grace(target); // must return without external help
                              // A fresh critical section entered *after* the grace period began
                              // does not hold up that (old) grace period.
        let _guard2 = h.enter();
        q.wait_grace(target);
    }

    #[test]
    fn grace_elapsed_probe_tracks_reader_quiescence() {
        let q = Qsbr::new();
        // No readers: every grace period is trivially elapsed.
        assert!(q.grace_elapsed(q.start_grace()));
        let h = q.register();
        let guard = h.enter();
        let target = q.start_grace();
        assert!(
            !q.grace_elapsed(target),
            "reader active since before the grace period began"
        );
        drop(guard);
        assert!(q.grace_elapsed(target), "reader announced quiescence");
        // A critical section entered *after* the grace period began does
        // not regress the (already elapsed) old grace period.
        let _guard2 = h.enter();
        assert!(q.grace_elapsed(target));
    }

    #[test]
    fn wait_grace_runs_deferred_callbacks_up_to_target() {
        let q = Qsbr::new();
        let ran = StdArc::new(AtomicUsize::new(0));
        let c = StdArc::clone(&ran);
        q.defer(Box::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        }));
        let target = q.start_grace();
        // A later deferral belongs to a later grace period and must stay
        // queued.
        let c = StdArc::clone(&ran);
        let _later = q.start_grace();
        q.defer(Box::new(move || {
            c.fetch_add(100, Ordering::SeqCst);
        }));
        q.wait_grace(target);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(q.pending(), 1);
        q.flush();
        assert_eq!(ran.load(Ordering::SeqCst), 101);
    }

    #[test]
    fn try_fast_requires_bias() {
        let q = Qsbr::new();
        let h = q.register();
        // Domains start unbiased: fast entries must decline.
        assert!(!q.biased());
        assert!(h.try_fast().is_none());
        q.resume_bias();
        assert!(q.biased());
        assert!(h.try_fast().is_some());
        // A drain barrier revokes the bias again.
        drop(h); // barrier would wait on our own fast generation otherwise
        q.drain_barrier();
        assert!(!q.biased());
        let h = q.register();
        assert!(h.try_fast().is_none());
        q.resume_bias();
        assert!(h.try_fast().is_some());
    }

    #[test]
    fn fast_entries_skip_section_bookkeeping() {
        let q = Qsbr::new();
        q.resume_bias();
        let h = q.register();
        assert_eq!(h.section_entries(), 0);
        for _ in 0..10 {
            let fast = h.try_fast().expect("biased domain");
            drop(fast);
        }
        assert_eq!(h.section_entries(), 0, "fast entries are not sections");
        h.critical(|| ());
        {
            // Unbiased attempt falls back to a classic section at the caller.
            // A separate domain: its counter is independent of `q`'s.
            let q2 = Qsbr::new();
            let h2 = q2.register();
            assert!(h2.try_fast().is_none());
            h2.critical(|| ());
            assert_eq!(h2.section_entries(), 1);
        }
        assert_eq!(h.section_entries(), 1);
        // The count is domain-wide telemetry, not per-handle: a second
        // handle on the same domain reads the same counter, which is also
        // reachable without any handle through `Qsbr::metrics`.
        let h3 = q.register();
        h3.critical(|| ());
        assert_eq!(h.section_entries(), 2);
        assert_eq!(h3.section_entries(), 2);
        assert_eq!(q.metrics().section_entries.get(), 2);
    }

    #[test]
    fn deferred_depth_gauge_tracks_queue_and_drops_to_zero() {
        // The deferred queue was unobservable between flushes; the gauge
        // must follow defer/flush live, remember its high water, and —
        // crucially — read zero after the Drop-time flush of the domain.
        let q = Qsbr::new();
        let gauge = q.metrics().deferred_depth.clone();
        let ran = StdArc::new(AtomicUsize::new(0));
        for i in 1..=4u64 {
            let c = StdArc::clone(&ran);
            q.defer(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
            assert_eq!(gauge.get(), i);
        }
        assert_eq!(gauge.high_water(), 4);
        q.flush();
        assert_eq!(gauge.get(), 0, "flush must drain the gauge");
        let c = StdArc::clone(&ran);
        q.defer(Box::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(gauge.get(), 1);
        drop(q);
        assert_eq!(ran.load(Ordering::SeqCst), 5, "drop must run callbacks");
        assert_eq!(gauge.get(), 0, "drop-time flush must zero the gauge");
        assert_eq!(gauge.high_water(), 4);
    }

    #[test]
    fn drain_barrier_waits_for_inflight_fast_section() {
        let q = Qsbr::new();
        q.resume_bias();
        let h = q.register();
        let entered = StdArc::new(AtomicBool::new(false));
        let release = StdArc::new(AtomicBool::new(false));
        let drained = StdArc::new(AtomicBool::new(false));

        let entered2 = StdArc::clone(&entered);
        let release2 = StdArc::clone(&release);
        let reader = thread::spawn(move || {
            let fast = h.try_fast().expect("biased domain");
            entered2.store(true, Ordering::SeqCst);
            while !release2.load(Ordering::SeqCst) {
                thread::sleep(Duration::from_millis(1));
            }
            drop(fast);
            drop(h);
        });
        while !entered.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(1));
        }
        let q2 = q.clone();
        let drained2 = StdArc::clone(&drained);
        let barrier = thread::spawn(move || {
            q2.drain_barrier();
            drained2.store(true, Ordering::SeqCst);
        });
        // The barrier must not complete while a fast section is in flight.
        thread::sleep(Duration::from_millis(30));
        assert!(!drained.load(Ordering::SeqCst));
        release.store(true, Ordering::SeqCst);
        barrier.join().unwrap();
        assert!(drained.load(Ordering::SeqCst));
        reader.join().unwrap();
        // Post-barrier the domain is unbiased until explicitly resumed.
        assert!(!q.biased());
    }

    #[test]
    fn biased_rcu_swap_is_safe_under_load() {
        use std::sync::atomic::AtomicPtr;

        // The full biased protocol under load: readers prefer fast sections
        // and fall back to classic ones while the writer is mid-swap; the
        // writer brackets every retire cycle with drain_barrier/resume_bias.
        let q = Qsbr::new();
        q.resume_bias();
        let initial = Box::into_raw(Box::new(vec![1u64; 64]));
        let ptr = StdArc::new(AtomicPtr::new(initial));
        let stop = StdArc::new(AtomicBool::new(false));

        let mut readers = Vec::new();
        for _ in 0..4 {
            let q = q.clone();
            let ptr = StdArc::clone(&ptr);
            let stop = StdArc::clone(&stop);
            readers.push(thread::spawn(move || {
                let h = q.register();
                let mut checksum = 0u64;
                let mut fast_hits = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    if let Some(fast) = h.try_fast() {
                        let p = ptr.load(Ordering::SeqCst);
                        // SAFETY: bias was observed inside the fast section,
                        // so no retire precedes the next drain barrier —
                        // which waits for this section to end.
                        let v = unsafe { &*p };
                        checksum = checksum.wrapping_add(v[0]);
                        fast_hits += 1;
                        drop(fast);
                    } else {
                        let guard = h.enter();
                        let p = ptr.load(Ordering::SeqCst);
                        // SAFETY: classic critical section; the writer waits
                        // a grace period before freeing.
                        let v = unsafe { &*p };
                        checksum = checksum.wrapping_add(v[0]);
                        drop(guard);
                    }
                }
                (checksum, fast_hits)
            }));
        }

        for gen in 2u64..30 {
            q.drain_barrier();
            let new = Box::into_raw(Box::new(vec![gen; 64]));
            let old = ptr.swap(new, Ordering::SeqCst);
            q.synchronize();
            // SAFETY: fast sections drained at the barrier and every classic
            // reader passed a quiescent state since the swap.
            unsafe { drop(Box::from_raw(old)) };
            q.resume_bias();
            // Give readers a window to actually take the fast path.
            thread::yield_now();
        }
        stop.store(true, Ordering::SeqCst);
        let mut total_fast = 0u64;
        for r in readers {
            let (_, fast_hits) = r.join().unwrap();
            total_fast += fast_hits;
        }
        assert!(total_fast > 0, "fast path should be taken between barriers");
        let last = ptr.load(Ordering::SeqCst);
        // SAFETY: all readers have exited.
        unsafe { drop(Box::from_raw(last)) };
    }
}
