//! Quiescent-state-based reclamation (QSBR), the RCU flavour used by the
//! Wormhole paper (§2.5) to let readers traverse the MetaTrieHT without any
//! lock while writers replace it wholesale.
//!
//! # Model
//!
//! * Reader threads register with a [`Qsbr`] domain and obtain a
//!   [`QsbrHandle`]. A reader wraps each index operation in a
//!   [`QsbrHandle::critical`] section (or a [`Guard`]); between operations the
//!   thread is *quiescent*.
//! * A writer that unpublishes an object (e.g. the previous version of the
//!   MetaTrieHT) calls [`Qsbr::synchronize`] — which blocks until every
//!   registered reader has passed through a quiescent state since the call —
//!   or [`Qsbr::defer`] to queue the reclamation and let a later
//!   `synchronize`/`try_flush` free it.
//!
//! The implementation uses a global epoch counter and per-thread local epoch
//! counters, the classic QSBR construction described by McKenney (user-space
//! RCU) and used by the paper's C implementation.
//!
//! # Biased fast entries
//!
//! Domains whose writers retire state only in rare, well-delimited phases
//! (e.g. the shard router table, which changes only during a migration) can
//! opt into a *biased* mode: while [`Qsbr::resume_bias`] is in effect,
//! [`QsbrHandle::try_fast`] grants a [`FastGuard`] read section that costs
//! one relaxed store, one fence, and one flag load — no epoch bookkeeping
//! and no condvar traffic. Before retiring anything the writer calls
//! [`Qsbr::drain_barrier`], which revokes the bias, waits out in-flight fast
//! sections, and forces a grace period for classic sections; fast entries
//! then decline (readers fall back to [`QsbrHandle::enter`]) until the
//! writer resumes the bias. Grace-period waiters are additionally counted,
//! so uncontended critical-section exits skip the condvar notify entirely.
//!
//! # Why not `crossbeam_epoch`?
//!
//! Crossbeam's EBR pins every operation and defers destruction to amortised
//! collection; the paper's scheme is QSBR with an explicit grace-period wait
//! (`synchronize`) on the writer side, because the writer *reuses* the old
//! table after the grace period instead of freeing it. Reproducing that
//! behaviour needs a blocking `synchronize`, which crossbeam does not expose.

pub mod qsbr;

pub use qsbr::{EpochMetrics, FastGuard, Guard, Qsbr, QsbrHandle};
