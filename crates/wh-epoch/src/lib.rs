//! Quiescent-state-based reclamation (QSBR), the RCU flavour used by the
//! Wormhole paper (§2.5) to let readers traverse the MetaTrieHT without any
//! lock while writers replace it wholesale.
//!
//! # Model
//!
//! * Reader threads register with a [`Qsbr`] domain and obtain a
//!   [`QsbrHandle`]. A reader wraps each index operation in a
//!   [`QsbrHandle::critical`] section (or a [`Guard`]); between operations the
//!   thread is *quiescent*.
//! * A writer that unpublishes an object (e.g. the previous version of the
//!   MetaTrieHT) calls [`Qsbr::synchronize`] — which blocks until every
//!   registered reader has passed through a quiescent state since the call —
//!   or [`Qsbr::defer`] to queue the reclamation and let a later
//!   `synchronize`/`try_flush` free it.
//!
//! The implementation uses a global epoch counter and per-thread local epoch
//! counters, the classic QSBR construction described by McKenney (user-space
//! RCU) and used by the paper's C implementation.
//!
//! # Why not `crossbeam_epoch`?
//!
//! Crossbeam's EBR pins every operation and defers destruction to amortised
//! collection; the paper's scheme is QSBR with an explicit grace-period wait
//! (`synchronize`) on the writer side, because the writer *reuses* the old
//! table after the grace period instead of freeing it. Reproducing that
//! behaviour needs a blocking `synchronize`, which crossbeam does not expose.

pub mod qsbr;

pub use qsbr::{Guard, Qsbr, QsbrHandle};
