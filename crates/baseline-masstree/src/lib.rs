//! A Masstree-style index: a trie with 8-byte key slices per layer, where
//! each trie layer is itself a B+ tree (Mao, Kohler, Morris — EuroSys 2012).
//! This is the "Masstree" baseline of the Wormhole evaluation.
//!
//! # Structure
//!
//! A key is consumed eight bytes at a time. Each layer is a B+ tree keyed by
//! the current 8-byte slice (zero-padded) plus a one-byte marker:
//!
//! * marker `0..=8` — the key *ends* inside this slice after `marker` bytes;
//!   the entry stores the value directly;
//! * marker `9` — keys continue beyond this slice; the entry stores either a
//!   single remaining *suffix* (the common case of a unique long key) or a
//!   pointer to the next trie layer once two keys share the slice
//!   ("layer expansion", as in the original Masstree).
//!
//! This encoding preserves lexicographic key order inside each layer's B+
//! tree, so ordered range scans work across layers. Lookup cost is
//! `O((L / 8) · log n_layer)` — the `O(L)`-flavoured behaviour with a large
//! fanout (2⁶⁴) that the paper contrasts with Wormhole's `O(log L)`.

pub mod tree;

pub use tree::Masstree;
