//! The Masstree-style layered index.

use baseline_btree::BPlusTree;
use index_traits::{IndexStats, OrderedIndex};

/// Bytes consumed per trie layer.
const SLICE: usize = 8;
/// Marker value for "the key continues past this slice".
const MARKER_LINK: u8 = 9;
/// Fanout of the per-layer B+ trees (Masstree uses 15-wide nodes).
const LAYER_FANOUT: usize = 16;

/// Encoded per-layer key: 8 slice bytes (zero padded) plus a marker byte.
type LayerKey = [u8; SLICE + 1];

/// Encodes a slice (at most 8 bytes) and marker into a layer key.
fn encode(slice: &[u8], marker: u8) -> LayerKey {
    debug_assert!(slice.len() <= SLICE);
    let mut out = [0u8; SLICE + 1];
    out[..slice.len()].copy_from_slice(slice);
    out[SLICE] = marker;
    out
}

/// An entry in a layer's B+ tree.
enum Entry<V> {
    /// The key ends inside this slice; marker is the in-slice length (0–8).
    Value(V),
    /// A single key continues past this slice with the given remainder.
    Suffix { rest: Box<[u8]>, value: V },
    /// Two or more keys share this slice; the next trie layer stores their
    /// remainders (Masstree's "layer expansion").
    Layer(Box<Layer<V>>),
}

/// One trie layer: a B+ tree over encoded slice keys.
struct Layer<V> {
    tree: BPlusTree<Entry<V>>,
}

impl<V> Layer<V> {
    fn new() -> Self {
        Self {
            tree: BPlusTree::with_fanout(LAYER_FANOUT),
        }
    }
}

/// A Masstree-style ordered index over byte-string keys.
pub struct Masstree<V> {
    root: Layer<V>,
    len: usize,
    key_bytes: usize,
}

impl<V: Clone> Default for Masstree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> Masstree<V> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self {
            root: Layer::new(),
            len: 0,
            key_bytes: 0,
        }
    }

    /// Number of trie layers currently reachable (for tests/diagnostics).
    pub fn layer_count(&self) -> usize {
        fn count<V>(layer: &Layer<V>) -> usize {
            let mut n = 1;
            for (_, entry) in layer.tree.iter_from(&[]) {
                if let Entry::Layer(next) = entry {
                    n += count(next);
                }
            }
            n
        }
        count(&self.root)
    }

    fn get_rec<'a>(layer: &'a Layer<V>, key_rest: &[u8]) -> Option<&'a V> {
        if key_rest.len() <= SLICE {
            let ek = encode(key_rest, key_rest.len() as u8);
            return match layer.tree.get_ref(&ek) {
                Some(Entry::Value(v)) => Some(v),
                _ => None,
            };
        }
        let ek = encode(&key_rest[..SLICE], MARKER_LINK);
        match layer.tree.get_ref(&ek) {
            Some(Entry::Suffix { rest, value }) => {
                (rest.as_ref() == &key_rest[SLICE..]).then_some(value)
            }
            Some(Entry::Layer(next)) => Self::get_rec(next, &key_rest[SLICE..]),
            _ => None,
        }
    }

    fn set_rec(layer: &mut Layer<V>, key_rest: &[u8], value: V) -> Option<V> {
        if key_rest.len() <= SLICE {
            let ek = encode(key_rest, key_rest.len() as u8);
            return match layer.tree.insert(&ek, Entry::Value(value)) {
                Some(Entry::Value(old)) => Some(old),
                Some(_) => unreachable!("short-marker entries always hold values"),
                None => None,
            };
        }
        let ek = encode(&key_rest[..SLICE], MARKER_LINK);
        match layer.tree.get_mut(&ek) {
            None => {
                layer.tree.insert(
                    &ek,
                    Entry::Suffix {
                        rest: key_rest[SLICE..].to_vec().into_boxed_slice(),
                        value,
                    },
                );
                None
            }
            Some(entry) => match entry {
                Entry::Suffix { rest, value: v } if rest.as_ref() == &key_rest[SLICE..] => {
                    Some(std::mem::replace(v, value))
                }
                Entry::Suffix { .. } => {
                    // Layer expansion: push the existing suffix down into a
                    // fresh layer, then insert the new key into it.
                    let old = std::mem::replace(entry, Entry::Layer(Box::new(Layer::new())));
                    let Entry::Suffix {
                        rest: old_rest,
                        value: old_value,
                    } = old
                    else {
                        unreachable!()
                    };
                    let Entry::Layer(next) = entry else {
                        unreachable!()
                    };
                    let displaced = Self::set_rec(next, &old_rest, old_value);
                    debug_assert!(displaced.is_none());
                    Self::set_rec(next, &key_rest[SLICE..], value)
                }
                Entry::Layer(next) => Self::set_rec(next, &key_rest[SLICE..], value),
                Entry::Value(_) => unreachable!("link-marker entries never hold bare values"),
            },
        }
    }

    fn del_rec(layer: &mut Layer<V>, key_rest: &[u8]) -> Option<V> {
        if key_rest.len() <= SLICE {
            let ek = encode(key_rest, key_rest.len() as u8);
            return match layer.tree.remove(&ek) {
                Some(Entry::Value(v)) => Some(v),
                Some(_) => unreachable!("short-marker entries always hold values"),
                None => None,
            };
        }
        let ek = encode(&key_rest[..SLICE], MARKER_LINK);
        let (remove_entry, result) = match layer.tree.get_mut(&ek) {
            Some(Entry::Suffix { rest, .. }) if rest.as_ref() == &key_rest[SLICE..] => (true, None),
            Some(Entry::Layer(next)) => {
                let removed = Self::del_rec(next, &key_rest[SLICE..]);
                let empty = next.tree.key_count() == 0;
                (removed.is_some() && empty, removed)
            }
            _ => return None,
        };
        if remove_entry {
            match layer.tree.remove(&ek) {
                Some(Entry::Suffix { value, .. }) => return Some(value),
                Some(Entry::Layer(_)) => return result,
                _ => unreachable!("entry disappeared during delete"),
            }
        }
        result
    }

    /// Visits all keys `>= start` (absolute key) in ascending order; the
    /// visitor returns `false` to stop.
    fn scan_rec<'a>(
        layer: &'a Layer<V>,
        path: &mut Vec<u8>,
        start_rest: &[u8],
        start_abs: &[u8],
        visit: &mut impl FnMut(&[u8], &'a V) -> bool,
    ) -> bool {
        // Position the in-layer iteration at the first slice that can hold
        // keys >= start; entries before it can only produce smaller keys.
        let lower = encode(&start_rest[..start_rest.len().min(SLICE)], 0);
        for (ek, entry) in layer.tree.iter_from(&lower) {
            let marker = ek[SLICE];
            match entry {
                Entry::Value(v) => {
                    let klen = path.len() + marker as usize;
                    path.extend_from_slice(&ek[..marker as usize]);
                    let emit = path.as_slice() >= start_abs;
                    let keep = if emit { visit(path, v) } else { true };
                    path.truncate(klen - marker as usize);
                    if !keep {
                        return false;
                    }
                }
                Entry::Suffix { rest, value } => {
                    let base = path.len();
                    path.extend_from_slice(&ek[..SLICE]);
                    path.extend_from_slice(rest);
                    let emit = path.as_slice() >= start_abs;
                    let keep = if emit { visit(path, value) } else { true };
                    path.truncate(base);
                    if !keep {
                        return false;
                    }
                }
                Entry::Layer(next) => {
                    let base = path.len();
                    path.extend_from_slice(&ek[..SLICE]);
                    // Only keys that share the slice with `start` inherit the
                    // remaining start bound; other subtrees scan from their
                    // beginning (the absolute comparison still filters).
                    let next_start: &[u8] =
                        if start_rest.len() > SLICE && ek[..SLICE] == start_rest[..SLICE] {
                            &start_rest[SLICE..]
                        } else {
                            &[]
                        };
                    let keep = Self::scan_rec(next, path, next_start, start_abs, visit);
                    path.truncate(base);
                    if !keep {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Visits every key/value pair at or after `start` in ascending order
    /// until the visitor returns `false`.
    pub fn scan_from(&self, start: &[u8], mut visit: impl FnMut(&[u8], &V) -> bool) {
        let mut path = Vec::new();
        Self::scan_rec(&self.root, &mut path, start, start, &mut visit);
    }

    fn stats_rec(layer: &Layer<V>, stats: &mut IndexStats) {
        let tree_stats = layer.tree.structure_stats();
        stats.structure_bytes += tree_stats.structure_bytes + tree_stats.key_bytes;
        for (_, entry) in layer.tree.iter_from(&[]) {
            match entry {
                Entry::Value(_) => stats.value_bytes += std::mem::size_of::<V>(),
                Entry::Suffix { rest, .. } => {
                    stats.structure_bytes += rest.len();
                    stats.value_bytes += std::mem::size_of::<V>();
                }
                Entry::Layer(next) => Self::stats_rec(next, stats),
            }
        }
    }
}

impl<V: Clone> OrderedIndex<V> for Masstree<V> {
    fn name(&self) -> &'static str {
        "masstree"
    }

    fn get(&self, key: &[u8]) -> Option<V> {
        Self::get_rec(&self.root, key).cloned()
    }

    fn set(&mut self, key: &[u8], value: V) -> Option<V> {
        let old = Self::set_rec(&mut self.root, key, value);
        if old.is_none() {
            self.len += 1;
            self.key_bytes += key.len();
        }
        old
    }

    fn del(&mut self, key: &[u8]) -> Option<V> {
        let removed = Self::del_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
            self.key_bytes -= key.len();
        }
        removed
    }

    fn len(&self) -> usize {
        self.len
    }

    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)> {
        let mut out = Vec::new();
        if count == 0 {
            return out;
        }
        self.scan_from(start, |k, v| {
            out.push((k.to_vec(), v.clone()));
            out.len() < count
        });
        out
    }

    fn stats(&self) -> IndexStats {
        let mut stats = IndexStats {
            keys: self.len,
            key_bytes: self.key_bytes,
            ..Default::default()
        };
        Self::stats_rec(&self.root, &mut stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_index() {
        let mut t: Masstree<u64> = Masstree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(b"x"), None);
        assert_eq!(t.del(b"x"), None);
        assert!(t.range_from(b"", 10).is_empty());
    }

    #[test]
    fn short_keys_stay_in_root_layer() {
        let mut t = Masstree::new();
        t.set(b"abc", 1u64);
        t.set(b"abcdefgh", 2);
        t.set(b"", 3);
        assert_eq!(t.layer_count(), 1);
        assert_eq!(t.get(b"abc"), Some(1));
        assert_eq!(t.get(b"abcdefgh"), Some(2));
        assert_eq!(t.get(b""), Some(3));
        assert_eq!(t.get(b"ab"), None);
    }

    #[test]
    fn long_unique_key_uses_suffix_not_layer() {
        let mut t = Masstree::new();
        t.set(b"this-is-a-long-unique-key", 1u64);
        assert_eq!(
            t.layer_count(),
            1,
            "a single long key should not expand a layer"
        );
        assert_eq!(t.get(b"this-is-a-long-unique-key"), Some(1));
        assert_eq!(t.get(b"this-is-"), None);
    }

    #[test]
    fn layer_expansion_on_shared_slice() {
        let mut t = Masstree::new();
        t.set(b"commonpref-aaa", 1u64);
        t.set(b"commonpref-bbb", 2);
        assert!(
            t.layer_count() >= 2,
            "shared 8-byte slice must expand a layer"
        );
        assert_eq!(t.get(b"commonpref-aaa"), Some(1));
        assert_eq!(t.get(b"commonpref-bbb"), Some(2));
        assert_eq!(t.get(b"commonpref-ccc"), None);
    }

    #[test]
    fn deep_layers_for_long_shared_prefixes() {
        let mut t = Masstree::new();
        let prefix = "http://example.com/some/very/long/path/";
        for i in 0..50u64 {
            t.set(format!("{prefix}{i:04}").as_bytes(), i);
        }
        assert!(t.layer_count() > 3);
        for i in 0..50u64 {
            assert_eq!(t.get(format!("{prefix}{i:04}").as_bytes()), Some(i));
        }
    }

    #[test]
    fn keys_that_are_prefixes_of_each_other() {
        let mut t = Masstree::new();
        let keys: Vec<&[u8]> = vec![
            b"a",
            b"ab",
            b"abcdefgh",
            b"abcdefghi",
            b"abcdefghij",
            b"abcdefgh\x00",
        ];
        for (i, k) in keys.iter().enumerate() {
            t.set(k, i as u64);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64), "{k:?}");
        }
        assert_eq!(t.len(), keys.len());
    }

    #[test]
    fn delete_collapses_empty_layers() {
        let mut t = Masstree::new();
        t.set(b"sharedsli-one", 1u64);
        t.set(b"sharedsli-two", 2);
        assert_eq!(t.del(b"sharedsli-one"), Some(1));
        assert_eq!(t.del(b"sharedsli-two"), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.get(b"sharedsli-one"), None);
        // Re-insertion works after the layer was removed.
        t.set(b"sharedsli-one", 7);
        assert_eq!(t.get(b"sharedsli-one"), Some(7));
    }

    #[test]
    fn ordered_scan_across_layers() {
        let mut t = Masstree::new();
        let names = [
            "Aaron", "Abbe", "Andrew", "Austin", "Denice", "Jacob", "James", "Jason", "John",
            "Joseph", "Julian", "Justin",
        ];
        for (i, k) in names.iter().enumerate() {
            t.set(k.as_bytes(), i as u64);
        }
        let scanned: Vec<String> = t
            .range_from(b"", usize::MAX)
            .into_iter()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        let mut sorted: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        sorted.sort();
        assert_eq!(scanned, sorted);
        let out = t.range_from(b"Brown", 3);
        let keys: Vec<String> = out
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, vec!["Denice", "Jacob", "James"]);
    }

    #[test]
    fn stats_counts_layers() {
        let mut t = Masstree::new();
        for i in 0..500u64 {
            t.set(format!("user-{i:010}-item-{i:010}").as_bytes(), i);
        }
        let s = t.stats();
        assert_eq!(s.keys, 500);
        assert!(s.structure_bytes > 0);
        assert_eq!(s.key_bytes, 500 * "user-0000000000-item-0000000000".len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_matches_btreemap_model(ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..20), any::<u64>(), any::<bool>()), 1..250)) {
            let mut t = Masstree::new();
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            for (key, value, is_delete) in ops {
                if is_delete {
                    prop_assert_eq!(t.del(&key), model.remove(&key));
                } else {
                    prop_assert_eq!(t.set(&key, value), model.insert(key.clone(), value));
                }
                prop_assert_eq!(t.len(), model.len());
            }
            for (k, v) in &model {
                prop_assert_eq!(t.get(k), Some(*v));
            }
            let scan = t.range_from(b"", usize::MAX);
            let expect: Vec<_> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
            prop_assert_eq!(scan, expect);
        }

        #[test]
        fn prop_range_from_matches_model(keys in proptest::collection::btree_set(
            proptest::collection::vec(any::<u8>(), 0..24), 1..80),
            start in proptest::collection::vec(any::<u8>(), 0..12),
            count in 0usize..20) {
            let mut t = Masstree::new();
            for (i, k) in keys.iter().enumerate() {
                t.set(k, i as u64);
            }
            let got: Vec<Vec<u8>> = t.range_from(&start, count).into_iter().map(|(k, _)| k).collect();
            let expect: Vec<Vec<u8>> = keys.iter().filter(|k| k.as_slice() >= start.as_slice())
                .take(count).cloned().collect();
            prop_assert_eq!(got, expect);
        }
    }
}
