//! The skip list implementation.

use index_traits::{IndexStats, OrderedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Maximum tower height, matching LevelDB (`kMaxHeight = 12`).
const MAX_HEIGHT: usize = 12;
/// Branching factor: a node of height `h` is promoted to `h + 1` with
/// probability `1 / BRANCHING`, matching LevelDB (`kBranching = 4`).
const BRANCHING: u32 = 4;

/// One skip-list node: a key, a value, and a tower of forward indices.
struct Node<V> {
    key: Box<[u8]>,
    value: V,
    /// Forward links, one per level; `usize::MAX` is the null link.
    next: Vec<usize>,
}

/// Index value used as the null link.
const NIL: usize = usize::MAX;

/// A LevelDB-style skip list keyed by byte strings.
///
/// Nodes live in a flat `Vec` arena and link to each other by index; deleted
/// nodes are pushed onto a free list and reused by later insertions. The
/// arena layout keeps the implementation safe-Rust while preserving the
/// pointer-chasing access pattern the paper attributes to skip lists.
pub struct SkipList<V> {
    arena: Vec<Option<Node<V>>>,
    free: Vec<usize>,
    /// `head[level]` is the first node index at `level`, or `NIL`.
    head: [usize; MAX_HEIGHT],
    height: usize,
    len: usize,
    key_bytes: usize,
    rng: SmallRng,
}

impl<V> Default for SkipList<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> SkipList<V> {
    /// Creates an empty skip list with a fixed RNG seed (deterministic tower
    /// heights make benchmarks and tests reproducible).
    pub fn new() -> Self {
        Self::with_seed(0x5153_4B49_504C_5354)
    }

    /// Creates an empty skip list using `seed` for tower-height decisions.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            arena: Vec::new(),
            free: Vec::new(),
            head: [NIL; MAX_HEIGHT],
            height: 1,
            len: 0,
            key_bytes: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws a random height with LevelDB's distribution.
    fn random_height(&mut self) -> usize {
        let mut h = 1;
        while h < MAX_HEIGHT && self.rng.gen_ratio(1, BRANCHING) {
            h += 1;
        }
        h
    }

    fn node(&self, idx: usize) -> &Node<V> {
        self.arena[idx].as_ref().expect("live node")
    }

    /// Finds, for each level, the index of the last node whose key is `< key`
    /// (`NIL` meaning "before the first node"). Returns the per-level
    /// predecessors and the index of the first node `>= key` at level 0.
    fn find_greater_or_equal(&self, key: &[u8]) -> ([usize; MAX_HEIGHT], usize) {
        let mut prev = [NIL; MAX_HEIGHT];
        let mut level = self.height - 1;
        // `cur == NIL` means we are at the head pseudo-node.
        let mut cur = NIL;
        loop {
            let next = if cur == NIL {
                self.head[level]
            } else {
                self.node(cur).next[level]
            };
            if next != NIL && self.node(next).key.as_ref() < key {
                cur = next;
            } else {
                prev[level] = cur;
                if level == 0 {
                    return (prev, next);
                }
                level -= 1;
            }
        }
    }

    fn alloc(&mut self, node: Node<V>) -> usize {
        if let Some(idx) = self.free.pop() {
            self.arena[idx] = Some(node);
            idx
        } else {
            self.arena.push(Some(node));
            self.arena.len() - 1
        }
    }

    /// Iterates key/value pairs in ascending key order starting at the first
    /// key `>= start`.
    pub fn iter_from<'a>(&'a self, start: &[u8]) -> impl Iterator<Item = (&'a [u8], &'a V)> + 'a {
        let (_, mut cur) = if self.len == 0 {
            ([NIL; MAX_HEIGHT], NIL)
        } else {
            self.find_greater_or_equal(start)
        };
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let node = self.node(cur);
            cur = node.next[0];
            Some((node.key.as_ref(), &node.value))
        })
    }
}

impl<V: Clone> OrderedIndex<V> for SkipList<V> {
    fn name(&self) -> &'static str {
        "skiplist"
    }

    fn get(&self, key: &[u8]) -> Option<V> {
        if self.len == 0 {
            return None;
        }
        let (_, ge) = self.find_greater_or_equal(key);
        if ge != NIL && self.node(ge).key.as_ref() == key {
            Some(self.node(ge).value.clone())
        } else {
            None
        }
    }

    fn set(&mut self, key: &[u8], value: V) -> Option<V> {
        let (mut prev, ge) = self.find_greater_or_equal(key);
        if ge != NIL && self.node(ge).key.as_ref() == key {
            let old = std::mem::replace(&mut self.arena[ge].as_mut().unwrap().value, value);
            return Some(old);
        }
        let h = self.random_height();
        if h > self.height {
            prev[self.height..h].fill(NIL);
            self.height = h;
        }
        let idx = self.alloc(Node {
            key: key.to_vec().into_boxed_slice(),
            value,
            next: vec![NIL; h],
        });
        for (level, &p) in prev.iter().enumerate().take(h) {
            let next = if p == NIL {
                self.head[level]
            } else {
                self.node(p).next[level]
            };
            self.arena[idx].as_mut().unwrap().next[level] = next;
            if p == NIL {
                self.head[level] = idx;
            } else {
                self.arena[p].as_mut().unwrap().next[level] = idx;
            }
        }
        self.len += 1;
        self.key_bytes += key.len();
        None
    }

    fn del(&mut self, key: &[u8]) -> Option<V> {
        if self.len == 0 {
            return None;
        }
        let (prev, ge) = self.find_greater_or_equal(key);
        if ge == NIL || self.node(ge).key.as_ref() != key {
            return None;
        }
        let node_height = self.node(ge).next.len();
        for (level, &p) in prev.iter().enumerate().take(node_height) {
            let next = self.node(ge).next[level];
            if p == NIL {
                if self.head[level] == ge {
                    self.head[level] = next;
                }
            } else if self.node(p).next[level] == ge {
                self.arena[p].as_mut().unwrap().next[level] = next;
            }
        }
        while self.height > 1 && self.head[self.height - 1] == NIL {
            self.height -= 1;
        }
        let node = self.arena[ge].take().expect("live node");
        self.free.push(ge);
        self.len -= 1;
        self.key_bytes -= node.key.len();
        Some(node.value)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)> {
        self.iter_from(start)
            .take(count)
            .map(|(k, v)| (k.to_vec(), v.clone()))
            .collect()
    }

    fn stats(&self) -> IndexStats {
        let tower_links: usize = self
            .arena
            .iter()
            .flatten()
            .map(|n| n.next.len() * std::mem::size_of::<usize>())
            .sum();
        let node_headers = self.len * std::mem::size_of::<Node<V>>();
        IndexStats {
            keys: self.len,
            structure_bytes: tower_links + node_headers,
            key_bytes: self.key_bytes,
            value_bytes: self.len * std::mem::size_of::<V>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_list_behaviour() {
        let mut sl: SkipList<u64> = SkipList::new();
        assert!(sl.is_empty());
        assert_eq!(sl.get(b"missing"), None);
        assert_eq!(sl.del(b"missing"), None);
        assert!(sl.range_from(b"", 10).is_empty());
    }

    #[test]
    fn insert_get_overwrite() {
        let mut sl = SkipList::new();
        assert_eq!(sl.set(b"James", 1u64), None);
        assert_eq!(sl.set(b"Jason", 2), None);
        assert_eq!(sl.get(b"James"), Some(1));
        assert_eq!(sl.set(b"James", 10), Some(1));
        assert_eq!(sl.get(b"James"), Some(10));
        assert_eq!(sl.len(), 2);
    }

    #[test]
    fn delete_removes_and_returns_value() {
        let mut sl = SkipList::new();
        for (i, k) in ["a", "b", "c", "d"].iter().enumerate() {
            sl.set(k.as_bytes(), i as u64);
        }
        assert_eq!(sl.del(b"b"), Some(1));
        assert_eq!(sl.get(b"b"), None);
        assert_eq!(sl.len(), 3);
        assert_eq!(sl.del(b"b"), None);
        // Remaining keys unaffected.
        assert_eq!(sl.get(b"a"), Some(0));
        assert_eq!(sl.get(b"c"), Some(2));
        assert_eq!(sl.get(b"d"), Some(3));
    }

    #[test]
    fn range_is_sorted_and_starts_at_lower_bound() {
        let mut sl = SkipList::new();
        let names = [
            "Aaron", "Abbe", "Andrew", "Austin", "Denice", "Jacob", "James", "Jason", "John",
            "Joseph", "Julian", "Justin",
        ];
        for (i, k) in names.iter().enumerate() {
            sl.set(k.as_bytes(), i as u64);
        }
        let out = sl.range_from(b"J", 4);
        let keys: Vec<_> = out
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, vec!["Jacob", "James", "Jason", "John"]);
        // Start key not present in the index.
        let out = sl.range_from(b"Brown", 2);
        assert_eq!(out[0].0, b"Denice".to_vec());
    }

    #[test]
    fn many_keys_round_trip() {
        let mut sl = SkipList::new();
        let mut model = BTreeMap::new();
        for i in 0u64..2000 {
            let key = format!("key-{:06}", (i * 7919) % 2000);
            sl.set(key.as_bytes(), i);
            model.insert(key, i);
        }
        assert_eq!(sl.len(), model.len());
        for (k, v) in &model {
            assert_eq!(sl.get(k.as_bytes()), Some(*v));
        }
        // Full ordered scan matches the model.
        let all = sl.range_from(b"", usize::MAX);
        let model_all: Vec<_> = model
            .iter()
            .map(|(k, v)| (k.clone().into_bytes(), *v))
            .collect();
        assert_eq!(all, model_all);
    }

    #[test]
    fn stats_track_keys_and_bytes() {
        let mut sl = SkipList::new();
        sl.set(b"abc", 1u64);
        sl.set(b"defgh", 2);
        let stats = sl.stats();
        assert_eq!(stats.keys, 2);
        assert_eq!(stats.key_bytes, 8);
        assert!(stats.structure_bytes > 0);
        sl.del(b"abc");
        assert_eq!(sl.stats().key_bytes, 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_matches_btreemap_model(ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..12), any::<u64>(), any::<bool>()), 1..200)) {
            let mut sl = SkipList::new();
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            for (key, value, is_delete) in ops {
                if is_delete {
                    prop_assert_eq!(sl.del(&key), model.remove(&key));
                } else {
                    prop_assert_eq!(sl.set(&key, value), model.insert(key.clone(), value));
                }
                prop_assert_eq!(sl.len(), model.len());
            }
            for (k, v) in &model {
                prop_assert_eq!(sl.get(k), Some(*v));
            }
            let scan = sl.range_from(b"", usize::MAX);
            let expect: Vec<_> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
            prop_assert_eq!(scan, expect);
        }

        #[test]
        fn prop_range_from_matches_model(keys in proptest::collection::btree_set(
            proptest::collection::vec(any::<u8>(), 1..8), 1..100),
            start in proptest::collection::vec(any::<u8>(), 0..8),
            count in 0usize..20) {
            let mut sl = SkipList::new();
            for (i, k) in keys.iter().enumerate() {
                sl.set(k, i as u64);
            }
            let got: Vec<Vec<u8>> = sl.range_from(&start, count).into_iter().map(|(k, _)| k).collect();
            let expect: Vec<Vec<u8>> = keys.iter().filter(|k| k.as_slice() >= start.as_slice())
                .take(count).cloned().collect();
            prop_assert_eq!(got, expect);
        }
    }
}
