//! A LevelDB-style skip list, used as the "Skip List" baseline in the
//! Wormhole evaluation (Figures 9, 10, 12, 15, 16, 18).
//!
//! The structure follows LevelDB's `skiplist.h`: a probabilistic tower with
//! branching probability 1/4 and a maximum height of 12 levels. Lookups walk
//! from the highest populated level down, giving the familiar `O(log N)` key
//! comparisons the paper contrasts with Wormhole's `O(log L)` cost.
//!
//! LevelDB's skip list has no built-in concurrency control for writers (the
//! paper notes it needs an external mutex); this reproduction likewise
//! implements the thread-unsafe [`index_traits::OrderedIndex`] trait only.

pub mod list;

pub use list::SkipList;
