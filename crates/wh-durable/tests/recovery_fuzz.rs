//! Crash-point fault-injection recovery harness.
//!
//! The differential argument: the *production* write path (the real
//! [`Wal`] with group commit) runs against a [`FailpointStorage`] that
//! crashes at a chosen byte offset; the surviving image is dropped into a
//! directory as a real segment file and recovered by the *production*
//! [`DurableWormhole::open`]; and the recovered state is compared against
//! an **independent** model — a from-scratch frame parser in this file
//! (sharing only the CRC primitive with the implementation) replaying the
//! committed prefix into a `BTreeMap`.
//!
//! Two sweeps:
//!
//! - [`crash_at_every_byte_boundary_recovers_committed_prefix`] cuts the
//!   full log image at **every byte offset** — the superset of every
//!   prefix a real crash can leave — and demands open() succeed and agree
//!   with the model at each cut.
//! - [`acknowledged_operations_survive_mid_append_crashes`] kills the
//!   storage *during* the run (both [`CrashMode`]s) and checks the
//!   durability contract proper: every operation acknowledged before the
//!   crash is present after recovery.
//!
//! Iteration counts scale with `WH_STRESS_MULT` for the nightly soak.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use index_traits::ConcurrentOrderedIndex;
use wh_durable::record::{encode_delete, encode_delete_range, encode_put};
use wh_durable::{CrashMode, DurableWormhole, FailpointStorage, Wal};
use wh_hash::crc32c;

fn stress_mult() -> u64 {
    std::env::var("WH_STRESS_MULT")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&m| m > 0)
        .unwrap_or(1)
}

/// Tiny deterministic RNG (xorshift64*) so every run replays the same
/// operation script without pulling in a seedable-RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[derive(Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    DeleteRange(Vec<u8>, Vec<u8>),
    /// Commit everything logged so far (an acknowledgement point).
    Commit,
}

/// A deterministic mixed workload over a small keyspace (so deletes and
/// range deletes actually hit), with commits at irregular intervals and a
/// deliberately uncommitted tail at the end.
fn workload(ops: usize) -> Vec<Op> {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let key = |n: u64| format!("key-{:03}", n % 120).into_bytes();
    let mut script = Vec::with_capacity(ops + ops / 3);
    for i in 0..ops {
        let roll = rng.next() % 10;
        let k = key(rng.next());
        if roll < 6 {
            let value = format!("v{i}-{}", rng.next() % 1000).into_bytes();
            script.push(Op::Put(k, value));
        } else if roll < 8 {
            script.push(Op::Delete(k));
        } else {
            let lo = key(rng.next());
            let width = 1 + rng.next() % 9;
            let hi = format!(
                "key-{:03}",
                (String::from_utf8_lossy(&lo)[4..].parse::<u64>().unwrap() + width) % 120
            )
            .into_bytes();
            if lo < hi {
                script.push(Op::DeleteRange(lo, hi));
            } else {
                script.push(Op::DeleteRange(hi, lo));
            }
        }
        if rng.next().is_multiple_of(4) {
            script.push(Op::Commit);
        }
    }
    // End on logged-but-uncommitted operations so the torn tail is real.
    script.push(Op::Put(b"tail-a".to_vec(), b"uncommitted".to_vec()));
    script.push(Op::Put(b"tail-b".to_vec(), b"uncommitted".to_vec()));
    script
}

/// Independent replay of the committed prefix of a raw log image.
///
/// This parser is written from the on-disk spec (`wh_durable::record` docs
/// and its known-answer test), *not* from the implementation: frames are
/// `len | crc | payload`, a frame is valid when both fit and the CRC
/// matches, and an operation takes effect only when a later `Commit` frame
/// covers its LSN. Returns the modelled map and the committed LSN.
fn model_replay(image: &[u8]) -> (BTreeMap<Vec<u8>, Vec<u8>>, u64) {
    let mut map = BTreeMap::new();
    let mut pending: Vec<(u64, u8, Vec<u8>)> = Vec::new();
    let mut committed = 0u64;
    let mut pos = 0usize;
    loop {
        if image.len() - pos < 8 {
            break;
        }
        let len = u32::from_le_bytes(image[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(image[pos + 4..pos + 8].try_into().unwrap());
        if len > image.len() - pos - 8 {
            break;
        }
        let payload = &image[pos + 8..pos + 8 + len];
        if crc32c(payload) != crc || payload.len() < 9 {
            break;
        }
        let tag = payload[0];
        let lsn = u64::from_le_bytes(payload[1..9].try_into().unwrap());
        let body = payload[9..].to_vec();
        match tag {
            1..=3 => pending.push((lsn, tag, body)),
            4 => {
                for (op_lsn, op_tag, body) in pending.drain(..) {
                    assert!(op_lsn <= lsn, "commit frame does not cover logged op");
                    let chunk = |pos: &mut usize| {
                        let len =
                            u32::from_le_bytes(body[*pos..*pos + 4].try_into().unwrap()) as usize;
                        let out = body[*pos + 4..*pos + 4 + len].to_vec();
                        *pos += 4 + len;
                        out
                    };
                    let mut at = 0usize;
                    match op_tag {
                        1 => {
                            let key = chunk(&mut at);
                            let value = chunk(&mut at);
                            map.insert(key, value);
                        }
                        2 => {
                            map.remove(&chunk(&mut at));
                        }
                        3 => {
                            let lo = chunk(&mut at);
                            let hi = chunk(&mut at);
                            let doomed: Vec<Vec<u8>> =
                                map.range(lo..hi).map(|(k, _)| k.clone()).collect();
                            for k in doomed {
                                map.remove(&k);
                            }
                        }
                        _ => unreachable!(),
                    }
                }
                committed = committed.max(lsn);
            }
            _ => break,
        }
        pos += 8 + len;
    }
    (map, committed)
}

/// Runs the script through a production [`Wal`] on a failpoint storage.
/// Returns the handle plus the highest LSN *acknowledged* (a `Commit`
/// step whose `commit()` returned `Ok`) before the storage died.
fn run_script(script: &[Op], kill_at: u64, mode: CrashMode) -> (wh_durable::FailpointHandle, u64) {
    let (storage, handle) = FailpointStorage::new(kill_at, mode);
    let wal = Wal::new(Box::new(storage), 1);
    let mut acked = 0u64;
    for op in script {
        let outcome = match op {
            Op::Put(key, value) => {
                wal.log(|buf, lsn| encode_put(buf, lsn, key, value), || ());
                Ok(0)
            }
            Op::Delete(key) => {
                wal.log(|buf, lsn| encode_delete(buf, lsn, key), || ());
                Ok(0)
            }
            Op::DeleteRange(lo, hi) => {
                wal.log(|buf, lsn| encode_delete_range(buf, lsn, lo, hi), || ());
                Ok(0)
            }
            Op::Commit => wal.sync_all().map(|watermark| {
                acked = acked.max(watermark);
                0
            }),
        };
        if outcome.is_err() {
            break; // the crash point: the process would be gone here
        }
    }
    (handle, acked)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wh-recovery-fuzz-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Recovered pairs plus the committed LSN the open reported.
type Recovered = (Vec<(Vec<u8>, Vec<u8>)>, u64);

/// Recovers `image` as segment 1 of a fresh directory through the
/// production open path and returns the recovered contents.
fn recover(dir: &PathBuf, image: &[u8]) -> Recovered {
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir).unwrap();
    fs::write(dir.join(format!("wal-{:020}.log", 1)), image).unwrap();
    let idx: DurableWormhole<Vec<u8>> = DurableWormhole::open(dir).unwrap();
    let state = idx.range_from(b"", usize::MAX);
    let committed = idx.recovery().committed_lsn;
    (state, committed)
}

#[test]
fn crash_at_every_byte_boundary_recovers_committed_prefix() {
    let ops = (60 * stress_mult()).min(600) as usize;
    let script = workload(ops);
    let (handle, _) = run_script(&script, u64::MAX, CrashMode::KeepAll);
    let full = handle.surviving_bytes();
    assert!(full.len() > 500, "workload produced a trivially short log");

    let dir = fresh_dir("everybyte");
    let mut distinct_states = 0usize;
    let mut last_committed = u64::MAX;
    for cut in 0..=full.len() {
        let image = &full[..cut];
        let (expected, expected_committed) = model_replay(image);
        let (state, committed) = recover(&dir, image);
        assert_eq!(
            committed, expected_committed,
            "committed LSN diverges at cut {cut}"
        );
        let expected: Vec<(Vec<u8>, Vec<u8>)> = expected.into_iter().collect();
        assert_eq!(state, expected, "recovered state diverges at cut {cut}");
        if committed != last_committed {
            distinct_states += 1;
            last_committed = committed;
        }
    }
    // The sweep must actually cross many commit horizons, or it tested
    // nothing but the empty log.
    assert!(
        distinct_states > ops / 8,
        "only {distinct_states} commit horizons crossed"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn acknowledged_operations_survive_mid_append_crashes() {
    let ops = (60 * stress_mult()).min(600) as usize;
    let script = workload(ops);
    let (probe, _) = run_script(&script, u64::MAX, CrashMode::KeepAll);
    let total = probe.surviving_bytes().len() as u64;

    // Enough kill points to land inside many different frames and
    // commit batches, denser under the nightly soak.
    let samples = (150 * stress_mult()).min(total) as usize;
    let step = (total / samples as u64).max(1);
    let dir = fresh_dir("midappend");
    let mut crashed_runs = 0usize;
    for mode in [CrashMode::KeepAll, CrashMode::DropUnsynced] {
        let mut kill_at = 0u64;
        while kill_at < total {
            let (handle, acked) = run_script(&script, kill_at, mode);
            crashed_runs += handle.is_dead() as usize;
            let image = handle.surviving_bytes();
            let (expected, expected_committed) = model_replay(&image);
            assert!(
                expected_committed >= acked,
                "acknowledged LSN {acked} not covered by surviving image \
                 (kill_at {kill_at}, {mode:?})"
            );
            let (state, committed) = recover(&dir, &image);
            assert_eq!(
                committed, expected_committed,
                "committed LSN diverges (kill_at {kill_at}, {mode:?})"
            );
            let expected: Vec<(Vec<u8>, Vec<u8>)> = expected.into_iter().collect();
            assert_eq!(
                state, expected,
                "recovered state diverges (kill_at {kill_at}, {mode:?})"
            );
            kill_at += step;
        }
    }
    assert!(crashed_runs > 0, "no run actually hit its kill point");
    fs::remove_dir_all(&dir).unwrap();
}
