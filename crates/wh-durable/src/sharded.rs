//! A range-partitioned durable front: N independent [`DurableWormhole`]
//! shards, **one WAL per shard**, under one directory.
//!
//! Partitioning durability by range keeps the group-commit contention
//! domain per shard — writers on different shards never meet on a log
//! mutex or share an fsync — at the price of *static* boundaries: the
//! boundary set is chosen at creation time, persisted in a `MANIFEST`
//! file, and never moves. Live rebalancing (what `wh_shard` does for the
//! in-memory front) is deliberately unsupported here: migrating a range
//! between shards would move keys across logs, and a crash mid-migration
//! could then find the same key's operations split across two logs with
//! no global order between them. Until a cross-log fencing record exists,
//! static boundaries are the honest contract.
//!
//! Durability semantics are **per shard**: each operation is logged,
//! applied, and committed entirely inside the shard that owns its key, so
//! single-key operations have exactly the [`DurableWormhole`] guarantees.
//! Multi-shard `delete_range` issues one `DeleteRange` record per
//! overlapped shard — a crash between shards can recover a partially
//! applied range removal (each shard is still internally consistent).
//!
//! Layout:
//!
//! ```text
//! <dir>/MANIFEST          boundary set (CRC-framed, tmp+rename published)
//! <dir>/shard-<i>/        one DurableWormhole directory per shard
//! ```

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use index_traits::{
    ChainedSource, ConcurrentOrderedIndex, Cursor, CursorSource, DurableIndex, IndexStats,
};
use wh_hash::crc32c;

use crate::durable::{DurableOptions, DurableWormhole};
use crate::value::DurableValue;

/// Manifest file magic (8 bytes, includes a format version).
pub const MANIFEST_MAGIC: &[u8; 8] = b"WHSHRD01";

const MANIFEST: &str = "MANIFEST";

fn bad_manifest(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {msg}"))
}

/// Encodes and atomically publishes the boundary set.
fn write_manifest(dir: &Path, boundaries: &[Vec<u8>]) -> io::Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.extend_from_slice(&(boundaries.len() as u32).to_le_bytes());
    for boundary in boundaries {
        buf.extend_from_slice(&(boundary.len() as u32).to_le_bytes());
        buf.extend_from_slice(boundary);
    }
    buf.extend_from_slice(&crc32c(&buf).to_le_bytes());
    let tmp = dir.join("MANIFEST.tmp");
    let final_path = dir.join(MANIFEST);
    let mut file = fs::File::create(&tmp)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, &final_path)?;
    crate::snapshot::sync_dir(dir)
}

fn read_manifest(path: &Path) -> io::Result<Vec<Vec<u8>>> {
    let mut buf = Vec::new();
    fs::File::open(path)?.read_to_end(&mut buf)?;
    if buf.len() < 8 + 4 + 4 || &buf[..8] != MANIFEST_MAGIC {
        return Err(bad_manifest("truncated or bad magic"));
    }
    let body = buf.len() - 4;
    let crc = u32::from_le_bytes(buf[body..].try_into().unwrap());
    if crc32c(&buf[..body]) != crc {
        return Err(bad_manifest("bad crc"));
    }
    let count = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    let mut boundaries = Vec::with_capacity(count);
    let mut pos = 12usize;
    for _ in 0..count {
        let end = pos.checked_add(4).filter(|&e| e <= body);
        let end = end.ok_or_else(|| bad_manifest("boundary overruns body"))?;
        let len = u32::from_le_bytes(buf[pos..end].try_into().unwrap()) as usize;
        let stop = end.checked_add(len).filter(|&e| e <= body);
        let stop = stop.ok_or_else(|| bad_manifest("boundary overruns body"))?;
        boundaries.push(buf[end..stop].to_vec());
        pos = stop;
    }
    if pos != body {
        return Err(bad_manifest("trailing bytes"));
    }
    Ok(boundaries)
}

/// A range-partitioned [`DurableWormhole`] with one WAL per shard (see
/// the [module docs](self) for semantics and layout).
pub struct DurableSharded<V: DurableValue> {
    shards: Vec<DurableWormhole<V>>,
    /// `boundaries[i]` is the inclusive lower bound of shard `i + 1`;
    /// shard 0 starts at the empty key. Strictly ascending, non-empty.
    boundaries: Vec<Vec<u8>>,
    dir: PathBuf,
}

impl<V: DurableValue> DurableSharded<V> {
    /// Opens (or creates) a sharded index in `dir`. On first open the
    /// given `boundaries` are validated and persisted to the `MANIFEST`;
    /// on every later open the **persisted** set wins — boundaries are
    /// part of the on-disk state, not a tunable (see the module docs for
    /// why they cannot move).
    pub fn open_with(
        dir: impl AsRef<Path>,
        boundaries: &[Vec<u8>],
        options: DurableOptions,
    ) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let manifest = dir.join(MANIFEST);
        let boundaries = if manifest.exists() {
            read_manifest(&manifest)?
        } else {
            let owned = boundaries.to_vec();
            Self::validate_boundaries(&owned)?;
            write_manifest(&dir, &owned)?;
            owned
        };
        let mut shards = Vec::with_capacity(boundaries.len() + 1);
        for i in 0..=boundaries.len() {
            shards.push(DurableWormhole::open_with(
                dir.join(format!("shard-{i}")),
                options,
            )?);
        }
        Ok(Self {
            shards,
            boundaries,
            dir,
        })
    }

    /// [`DurableSharded::open_with`] with default options.
    pub fn open(dir: impl AsRef<Path>, boundaries: &[Vec<u8>]) -> io::Result<Self> {
        Self::open_with(dir, boundaries, DurableOptions::default())
    }

    fn validate_boundaries(boundaries: &[Vec<u8>]) -> io::Result<()> {
        for pair in boundaries.windows(2) {
            if pair[0] >= pair[1] {
                return Err(bad_manifest("boundaries must be strictly ascending"));
            }
        }
        if boundaries.iter().any(|b| b.is_empty()) {
            return Err(bad_manifest("empty boundary key"));
        }
        Ok(())
    }

    /// Number of shards (boundaries + 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The persisted boundary set.
    pub fn boundaries(&self) -> &[Vec<u8>] {
        &self.boundaries
    }

    /// Direct access to shard `i` (tests and stats).
    pub fn shard(&self, i: usize) -> &DurableWormhole<V> {
        &self.shards[i]
    }

    /// The persistence directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Registers every shard's durability metrics into `registry` under
    /// `<prefix>_shard<i>_…` names (prefix must match `[a-z0-9_]+`).
    pub fn register_metrics(&self, registry: &wh_telemetry::Registry, prefix: &str) {
        for (i, shard) in self.shards.iter().enumerate() {
            shard.register_metrics(registry, &format!("{prefix}_shard{i}"));
        }
    }

    fn shard_for(&self, key: &[u8]) -> usize {
        self.boundaries
            .partition_point(|boundary| boundary.as_slice() <= key)
    }
}

impl<V: DurableValue> ConcurrentOrderedIndex<V> for DurableSharded<V> {
    fn name(&self) -> &'static str {
        "wormhole-durable-sharded"
    }

    fn get(&self, key: &[u8]) -> Option<V> {
        self.shards[self.shard_for(key)].get(key)
    }

    /// Panics if the owning shard's WAL fails — the per-shard failure
    /// policy of [`DurableWormhole::set`](ConcurrentOrderedIndex::set).
    fn set(&self, key: &[u8], value: V) -> Option<V> {
        self.shards[self.shard_for(key)].set(key, value)
    }

    /// Panics if the owning shard's WAL fails.
    fn del(&self, key: &[u8]) -> Option<V> {
        self.shards[self.shard_for(key)].del(key)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.len()).sum()
    }

    /// One logged `DeleteRange` per overlapped shard, clamped to the
    /// shard's territory; durability is per shard (module docs).
    fn delete_range(&self, lo: &[u8], hi: &[u8]) -> usize {
        if lo >= hi {
            return 0;
        }
        let first = self.shard_for(lo);
        let last = self.shard_for(hi);
        let mut removed = 0usize;
        for i in first..=last.min(self.shards.len() - 1) {
            let shard_lo = if i == first {
                lo
            } else {
                self.boundaries[i - 1].as_slice()
            };
            let shard_hi = if i < self.boundaries.len() && self.boundaries[i].as_slice() < hi {
                self.boundaries[i].as_slice()
            } else {
                hi
            };
            if shard_lo < shard_hi {
                removed += self.shards[i].delete_range(shard_lo, shard_hi);
            }
        }
        removed
    }

    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)> {
        let mut out = Vec::new();
        self.scan(start).collect_next(count, &mut out);
        out
    }

    /// Streams across shard boundaries by chaining the per-shard cursors
    /// (disjoint ascending ranges, so the concatenation stays strictly
    /// ascending).
    fn scan<'a>(&'a self, start: &[u8]) -> Cursor<'a, V>
    where
        V: Clone + 'a,
    {
        let first = self.shard_for(start);
        let shards = &self.shards;
        let start_owned = start.to_vec();
        let mut next = first;
        let factory = move || -> Option<Box<dyn CursorSource<V> + 'a>> {
            let shard = shards.get(next)?;
            let from = if next == first {
                start_owned.clone()
            } else {
                Vec::new()
            };
            next += 1;
            Some(Box::new(shard.scan(&from)))
        };
        Cursor::new(start, Box::new(ChainedSource::new(Box::new(factory))))
    }

    fn stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for shard in &self.shards {
            let stats = shard.stats();
            total.keys += stats.keys;
            total.structure_bytes += stats.structure_bytes;
            total.key_bytes += stats.key_bytes;
            total.value_bytes += stats.value_bytes;
        }
        total
    }
}

impl<V: DurableValue> DurableIndex<V> for DurableSharded<V> {
    /// Syncs every shard's log; the returned watermark is the **minimum**
    /// across shards (watermarks are per-log sequence numbers, so the
    /// minimum is the only value meaningful for the whole front).
    fn wal_sync(&self) -> io::Result<u64> {
        let mut min = u64::MAX;
        for shard in &self.shards {
            min = min.min(shard.wal_sync()?);
        }
        Ok(min)
    }

    fn durable_watermark(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.durable_watermark())
            .min()
            .unwrap_or(0)
    }

    /// Checkpoints every shard; returns the minimum covered LSN.
    fn checkpoint(&self) -> io::Result<u64> {
        let mut min = u64::MAX;
        for shard in &self.shards {
            min = min.min(shard.checkpoint()?);
        }
        Ok(min)
    }

    /// Ticks every shard's checkpoint policy independently; `Some` when
    /// at least one shard checkpointed (with the smallest covered LSN
    /// among those that did).
    fn maybe_checkpoint(&self) -> io::Result<Option<u64>> {
        let mut done: Option<u64> = None;
        for shard in &self.shards {
            if let Some(covered) = shard.maybe_checkpoint()? {
                done = Some(done.map_or(covered, |d| d.min(covered)));
            }
        }
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole::WormholeConfig;

    fn test_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wh-durable-shard-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny() -> DurableOptions {
        DurableOptions {
            config: WormholeConfig::optimized().with_leaf_capacity(8),
            ..DurableOptions::default()
        }
    }

    fn boundaries() -> Vec<Vec<u8>> {
        vec![b"h".to_vec(), b"p".to_vec()]
    }

    #[test]
    fn routes_persists_and_recovers_across_shards() {
        let dir = test_dir("route");
        {
            let idx: DurableSharded<u64> =
                DurableSharded::open_with(&dir, &boundaries(), tiny()).unwrap();
            assert_eq!(idx.shard_count(), 3);
            for i in 0..300u64 {
                idx.set(
                    format!("{}{i:04}", (b'a' + (i % 26) as u8) as char).as_bytes(),
                    i,
                );
            }
            assert!(idx.shard(0).len() > 0);
            assert!(idx.shard(1).len() > 0);
            assert!(idx.shard(2).len() > 0);
            assert_eq!(idx.len(), 300);
        }
        let idx: DurableSharded<u64> =
            DurableSharded::open_with(&dir, &boundaries(), tiny()).unwrap();
        assert_eq!(idx.len(), 300);
        for i in 0..300u64 {
            let key = format!("{}{i:04}", (b'a' + (i % 26) as u8) as char);
            assert_eq!(idx.get(key.as_bytes()), Some(i), "{key}");
        }
        // Cross-shard ordered scan yields everything in global key order.
        let all = idx.range_from(b"", usize::MAX);
        assert_eq!(all.len(), 300);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persisted_boundaries_win_over_the_argument() {
        let dir = test_dir("manifest");
        {
            let _idx: DurableSharded<u64> =
                DurableSharded::open_with(&dir, &boundaries(), tiny()).unwrap();
        }
        let idx: DurableSharded<u64> =
            DurableSharded::open_with(&dir, &[b"zzz".to_vec()], tiny()).unwrap();
        assert_eq!(idx.boundaries(), boundaries().as_slice());
        assert_eq!(idx.shard_count(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_boundaries_are_rejected() {
        let dir = test_dir("invalid");
        let unsorted = vec![b"p".to_vec(), b"h".to_vec()];
        assert!(DurableSharded::<u64>::open_with(&dir, &unsorted, tiny()).is_err());
        let empty_key = vec![Vec::new()];
        assert!(DurableSharded::<u64>::open_with(&dir, &empty_key, tiny()).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_range_spans_shards_with_one_record_each() {
        let dir = test_dir("span");
        {
            let idx: DurableSharded<u64> =
                DurableSharded::open_with(&dir, &boundaries(), tiny()).unwrap();
            for c in b'a'..=b'z' {
                for i in 0..10u64 {
                    idx.set(format!("{}{i}", c as char).as_bytes(), i);
                }
            }
            assert_eq!(idx.len(), 260);
            // [f, s) crosses both boundaries: f..h in shard 0, h..p in
            // shard 1, p..s in shard 2.
            let removed = idx.delete_range(b"f", b"s");
            assert_eq!(removed, 130);
            assert_eq!(idx.len(), 130);
        }
        let idx: DurableSharded<u64> =
            DurableSharded::open_with(&dir, &boundaries(), tiny()).unwrap();
        assert_eq!(idx.len(), 130, "range delete must replay on every shard");
        assert_eq!(idx.get(b"e0"), Some(0));
        assert_eq!(idx.get(b"f0"), None);
        assert_eq!(idx.get(b"r9"), None);
        assert_eq!(idx.get(b"s0"), Some(0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_and_watermarks_cover_all_shards() {
        let dir = test_dir("ckpt");
        let idx: DurableSharded<u64> =
            DurableSharded::open_with(&dir, &boundaries(), tiny()).unwrap();
        for c in [b'a', b'j', b'q'] {
            for i in 0..50u64 {
                idx.set(format!("{}{i:03}", c as char).as_bytes(), i);
            }
        }
        assert_eq!(idx.durable_watermark(), 50);
        let covered = idx.checkpoint().unwrap();
        assert_eq!(covered, 50);
        for i in 0..3 {
            assert!(idx.shard(i).recovery().committed_lsn <= 50);
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
