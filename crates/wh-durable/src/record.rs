//! WAL record framing: length- and CRC-framed records with a stable wire
//! format.
//!
//! Every record is one *frame*:
//!
//! ```text
//! frame   := len:u32le | crc:u32le | payload[len]
//! payload := tag:u8 | lsn:u64le | body
//! ```
//!
//! `crc` is the CRC-32c ([`wh_hash::crc32c()`]) of the payload bytes. The
//! four record kinds and their bodies:
//!
//! | tag | record        | body                                    |
//! |-----|---------------|-----------------------------------------|
//! | 1   | `Put`         | `klen:u32le | key | vlen:u32le | value` |
//! | 2   | `Delete`      | `klen:u32le | key`                      |
//! | 3   | `DeleteRange` | `lolen:u32le | lo | hilen:u32le | hi`   |
//! | 4   | `Commit`      | (empty — `lsn` is the sealed-through LSN) |
//!
//! The format is deliberately boring and deliberately *frozen*: the
//! known-answer tests in this module pin exact frame bytes (including the
//! CRC), so any refactor that silently changes the wire format — a field
//! reorder, an endianness slip, a CRC variant swap — fails loudly instead
//! of corrupting recovery of logs written by an older build.
//!
//! A frame walk ([`FrameReader`]) decodes a byte stream frame by frame and
//! stops at the first frame that is incomplete or fails its CRC — the
//! *torn tail*. Everything before that point is trusted; everything at and
//! after it is discarded by recovery (see [`crate::wal`]).

use wh_hash::crc32c;

/// Frame header size: `len:u32` + `crc:u32`.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single payload, rejected as corruption beyond it. A
/// torn length field must never provoke a absurd allocation.
pub const MAX_PAYLOAD: usize = 1 << 28;

/// Record tags (frozen wire constants).
pub const TAG_PUT: u8 = 1;
/// See [`TAG_PUT`].
pub const TAG_DELETE: u8 = 2;
/// See [`TAG_PUT`].
pub const TAG_DELETE_RANGE: u8 = 3;
/// See [`TAG_PUT`].
pub const TAG_COMMIT: u8 = 4;

/// A decoded WAL record (owning its byte payloads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Insert or overwrite `key` with the encoded `value`.
    Put {
        /// Log sequence number of the operation.
        lsn: u64,
        /// The key bytes.
        key: Vec<u8>,
        /// The value, encoded by [`crate::DurableValue::encode_into`].
        value: Vec<u8>,
    },
    /// Remove `key`.
    Delete {
        /// Log sequence number of the operation.
        lsn: u64,
        /// The key bytes.
        key: Vec<u8>,
    },
    /// Remove every key in `lo <= key < hi`.
    DeleteRange {
        /// Log sequence number of the operation.
        lsn: u64,
        /// Inclusive lower bound.
        lo: Vec<u8>,
        /// Exclusive upper bound.
        hi: Vec<u8>,
    },
    /// Seals every operation record with `lsn <= lsn` as committed.
    Commit {
        /// The sealed-through LSN.
        lsn: u64,
    },
}

impl WalRecord {
    /// The record's LSN (for `Commit`, the sealed-through LSN).
    pub fn lsn(&self) -> u64 {
        match self {
            WalRecord::Put { lsn, .. }
            | WalRecord::Delete { lsn, .. }
            | WalRecord::DeleteRange { lsn, .. }
            | WalRecord::Commit { lsn } => *lsn,
        }
    }
}

/// Appends a framed payload: computes the CRC, writes the header, then the
/// payload bytes that `body` already placed in `scratch`.
fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn push_bytes(payload: &mut Vec<u8>, bytes: &[u8]) {
    payload.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    payload.extend_from_slice(bytes);
}

/// Appends a framed `Put` record to `out`.
pub fn encode_put(out: &mut Vec<u8>, lsn: u64, key: &[u8], value: &[u8]) {
    let mut payload = Vec::with_capacity(1 + 8 + 8 + key.len() + value.len());
    payload.push(TAG_PUT);
    payload.extend_from_slice(&lsn.to_le_bytes());
    push_bytes(&mut payload, key);
    push_bytes(&mut payload, value);
    frame_into(out, &payload);
}

/// Appends a framed `Delete` record to `out`.
pub fn encode_delete(out: &mut Vec<u8>, lsn: u64, key: &[u8]) {
    let mut payload = Vec::with_capacity(1 + 8 + 4 + key.len());
    payload.push(TAG_DELETE);
    payload.extend_from_slice(&lsn.to_le_bytes());
    push_bytes(&mut payload, key);
    frame_into(out, &payload);
}

/// Appends a framed `DeleteRange` record to `out`.
pub fn encode_delete_range(out: &mut Vec<u8>, lsn: u64, lo: &[u8], hi: &[u8]) {
    let mut payload = Vec::with_capacity(1 + 8 + 8 + lo.len() + hi.len());
    payload.push(TAG_DELETE_RANGE);
    payload.extend_from_slice(&lsn.to_le_bytes());
    push_bytes(&mut payload, lo);
    push_bytes(&mut payload, hi);
    frame_into(out, &payload);
}

/// Appends a framed `Commit` record to `out`.
pub fn encode_commit(out: &mut Vec<u8>, lsn: u64) {
    let mut payload = [0u8; 9];
    payload[0] = TAG_COMMIT;
    payload[1..9].copy_from_slice(&lsn.to_le_bytes());
    frame_into(out, &payload);
}

fn read_u32(buf: &[u8], pos: usize) -> Option<u32> {
    Some(u32::from_le_bytes(buf.get(pos..pos + 4)?.try_into().ok()?))
}

fn read_u64(buf: &[u8], pos: usize) -> Option<u64> {
    Some(u64::from_le_bytes(buf.get(pos..pos + 8)?.try_into().ok()?))
}

fn read_chunk<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len = read_u32(buf, *pos)? as usize;
    let start = *pos + 4;
    let chunk = buf.get(start..start.checked_add(len)?)?;
    *pos = start + len;
    Some(chunk)
}

/// Decodes one payload (past its validated frame header). `None` means the
/// payload is malformed — recovery treats this like a CRC failure.
fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let tag = *payload.first()?;
    let lsn = read_u64(payload, 1)?;
    let mut pos = 9;
    let record = match tag {
        TAG_PUT => {
            let key = read_chunk(payload, &mut pos)?.to_vec();
            let value = read_chunk(payload, &mut pos)?.to_vec();
            WalRecord::Put { lsn, key, value }
        }
        TAG_DELETE => {
            let key = read_chunk(payload, &mut pos)?.to_vec();
            WalRecord::Delete { lsn, key }
        }
        TAG_DELETE_RANGE => {
            let lo = read_chunk(payload, &mut pos)?.to_vec();
            let hi = read_chunk(payload, &mut pos)?.to_vec();
            WalRecord::DeleteRange { lsn, lo, hi }
        }
        TAG_COMMIT => WalRecord::Commit { lsn },
        _ => return None,
    };
    // Trailing garbage inside a CRC-valid payload is still corruption.
    (pos == payload.len()).then_some(record)
}

/// Walks a byte stream frame by frame, stopping at the torn tail.
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    /// Starts a frame walk at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Byte offset of the next undecoded frame — after the walk ends, the
    /// length of the valid prefix (the torn-tail truncation point).
    pub fn valid_len(&self) -> usize {
        self.pos
    }

    /// Decodes the next frame, or `None` at the end of the valid prefix
    /// (clean end of stream or torn tail — indistinguishable by design:
    /// recovery trusts exactly the frames this yields).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<WalRecord> {
        let len = read_u32(self.buf, self.pos)? as usize;
        if len > MAX_PAYLOAD {
            return None;
        }
        let crc = read_u32(self.buf, self.pos + 4)?;
        let start = self.pos + FRAME_HEADER;
        let payload = self.buf.get(start..start.checked_add(len)?)?;
        if crc32c(payload) != crc {
            return None;
        }
        let record = decode_payload(payload)?;
        self.pos = start + len;
        Some(record)
    }
}

/// Replays a byte stream with commit semantics: operation records are
/// buffered and handed to `apply` only once a `Commit` frame at or above
/// their LSN is decoded. Returns `(valid_len, committed_lsn, max_lsn)`:
/// the torn-tail truncation point, the highest sealed LSN, and the highest
/// LSN observed in any valid frame (committed or not).
///
/// This is *the* definition of recovery: a logged operation exists after a
/// crash exactly when a `Commit` frame covering it survived — which is
/// also exactly when the writer's `commit()` call could have returned, so
/// no acknowledged operation is ever lost and no torn batch is ever
/// half-applied.
pub fn replay_committed(buf: &[u8], mut apply: impl FnMut(&WalRecord)) -> (usize, u64, u64) {
    let mut reader = FrameReader::new(buf);
    let mut buffered: Vec<WalRecord> = Vec::new();
    let mut committed_lsn = 0u64;
    let mut max_lsn = 0u64;
    let mut committed_end = 0usize;
    while let Some(record) = reader.next() {
        max_lsn = max_lsn.max(record.lsn());
        match record {
            WalRecord::Commit { lsn } => {
                let mut i = 0;
                while i < buffered.len() {
                    if buffered[i].lsn() <= lsn {
                        apply(&buffered[i]);
                        buffered.remove(i);
                    } else {
                        i += 1;
                    }
                }
                committed_lsn = committed_lsn.max(lsn);
                committed_end = reader.valid_len();
            }
            op => buffered.push(op),
        }
    }
    // Uncommitted tail operations are discarded: the truncation point is
    // the end of the last Commit frame, not the last valid frame.
    (committed_end, committed_lsn, max_lsn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_record_kinds() {
        let mut buf = Vec::new();
        encode_put(&mut buf, 1, b"key", b"value");
        encode_delete(&mut buf, 2, b"key");
        encode_delete_range(&mut buf, 3, b"a", b"z");
        encode_commit(&mut buf, 3);
        let mut reader = FrameReader::new(&buf);
        assert_eq!(
            reader.next(),
            Some(WalRecord::Put {
                lsn: 1,
                key: b"key".to_vec(),
                value: b"value".to_vec()
            })
        );
        assert_eq!(
            reader.next(),
            Some(WalRecord::Delete {
                lsn: 2,
                key: b"key".to_vec()
            })
        );
        assert_eq!(
            reader.next(),
            Some(WalRecord::DeleteRange {
                lsn: 3,
                lo: b"a".to_vec(),
                hi: b"z".to_vec()
            })
        );
        assert_eq!(reader.next(), Some(WalRecord::Commit { lsn: 3 }));
        assert_eq!(reader.next(), None);
        assert_eq!(reader.valid_len(), buf.len());
    }

    #[test]
    fn torn_tail_stops_the_walk_at_every_truncation_point() {
        let mut buf = Vec::new();
        encode_put(&mut buf, 1, b"alpha", b"1");
        encode_commit(&mut buf, 1);
        let first_two = buf.len();
        encode_put(&mut buf, 2, b"beta", b"2");
        for cut in first_two..buf.len() {
            let mut reader = FrameReader::new(&buf[..cut]);
            assert!(reader.next().is_some(), "cut={cut}: first frame intact");
            assert!(reader.next().is_some(), "cut={cut}: commit intact");
            assert_eq!(reader.next(), None, "cut={cut}: torn frame yielded");
            assert_eq!(reader.valid_len(), first_two, "cut={cut}");
        }
    }

    #[test]
    fn corrupt_byte_anywhere_is_detected() {
        let mut clean = Vec::new();
        encode_put(&mut clean, 7, b"key-7", b"val-7");
        encode_commit(&mut clean, 7);
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            let mut map = std::collections::BTreeMap::new();
            let (_, committed, _) = replay_committed(&bad, |record| {
                if let WalRecord::Put { key, value, .. } = record {
                    map.insert(key.clone(), value.clone());
                }
            });
            // Either the put frame died (nothing applied) or the commit
            // frame died (nothing committed); a flipped bit may only ever
            // shrink the committed prefix, never corrupt a value.
            if committed == 7 {
                // The flip landed in a frame that still validated — the
                // only way that happens is a flip in the *length* of a
                // frame that then re-framed... which the CRC rejects; so
                // a full commit means the put survived byte-identical.
                assert_eq!(map.get(&b"key-7"[..]), Some(&b"val-7".to_vec()), "i={i}");
            } else {
                assert_eq!(committed, 0, "i={i}");
            }
        }
    }

    #[test]
    fn replay_applies_only_committed_records() {
        let mut buf = Vec::new();
        encode_put(&mut buf, 1, b"a", b"1");
        encode_put(&mut buf, 2, b"b", b"2");
        encode_commit(&mut buf, 2);
        let sealed = buf.len();
        encode_put(&mut buf, 3, b"c", b"3");
        // No commit for lsn 3: it must not be applied.
        let mut applied = Vec::new();
        let (valid, committed, max) = replay_committed(&buf, |r| applied.push(r.lsn()));
        assert_eq!(applied, vec![1, 2]);
        assert_eq!(valid, sealed);
        assert_eq!(committed, 2);
        assert_eq!(max, 3);
    }

    /// Known-answer frames: the exact bytes (including CRC) of fixed
    /// records. These pin the wire format — see the module docs.
    #[test]
    fn known_answer_frames() {
        let mut put = Vec::new();
        encode_put(&mut put, 0x0102030405060708, b"K", b"V");
        assert_eq!(put.len(), FRAME_HEADER + 1 + 8 + 4 + 1 + 4 + 1);
        // len = 19 bytes of payload.
        assert_eq!(&put[0..4], &19u32.to_le_bytes());
        // payload: tag | lsn le | klen | 'K' | vlen | 'V'
        assert_eq!(
            &put[8..],
            &[
                TAG_PUT, 0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, 1, 0, 0, 0, b'K', 1, 0, 0,
                0, b'V'
            ]
        );
        // CRC-32c of that payload, little-endian (pinned value).
        assert_eq!(&put[4..8], &crc32c(&put[8..]).to_le_bytes());

        let mut commit = Vec::new();
        encode_commit(&mut commit, 1);
        assert_eq!(
            commit,
            [
                9, 0, 0, 0, // len
                commit[4], commit[5], commit[6], commit[7], // crc (pinned below)
                TAG_COMMIT, 1, 0, 0, 0, 0, 0, 0, 0,
            ]
        );
    }
}
