//! Value encoding for WAL records and snapshot files.
//!
//! Keys are raw byte strings throughout the workspace; values are generic,
//! so anything stored durably must say how it becomes bytes. The codec is
//! deliberately minimal — no self-description, no versioning — because the
//! containing frame (WAL record or snapshot entry) already carries the
//! length, and a `DurableWormhole<V>` is only ever reopened as the same
//! `V`.

/// A value type that can round-trip through the WAL and snapshots.
pub trait DurableValue: Clone + Send + Sync + 'static {
    /// Appends this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);
    /// Decodes a value from exactly `bytes`; `None` on malformed input
    /// (treated as corruption by recovery).
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl DurableValue for u64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl DurableValue for Vec<u8> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

impl DurableValue for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<V: DurableValue + PartialEq + std::fmt::Debug>(value: V) {
        let mut buf = Vec::new();
        value.encode_into(&mut buf);
        assert_eq!(V::decode(&buf), Some(value));
    }

    #[test]
    fn roundtrips() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![1u8, 2, 3]);
        roundtrip(String::from("héllo"));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert_eq!(u64::decode(b"short"), None);
        assert_eq!(String::decode(&[0xFF, 0xFE]), None);
    }
}
