//! Crash durability for the Wormhole index: a write-ahead log,
//! crash-consistent snapshots, and recovery that rebuilds the in-memory
//! structure from the two.
//!
//! # The persistence-ordering invariant
//!
//! Every layer in this crate follows one discipline, the same
//! records → links → header-publish ordering the in-memory index uses for
//! its lock-free readers, transplanted to storage:
//!
//! 1. **Log before apply.** An operation's WAL frame is encoded under the
//!    sequencer lock *before* the in-memory index mutates, and both happen
//!    under the same critical section — WAL order and apply order are
//!    identical, so replay reproduces exactly the in-memory history.
//! 2. **Commit before acknowledge.** An operation is reported durable only
//!    after a `Commit` frame covering its LSN is appended *and* fsynced.
//!    Frames above the last synced `Commit` are provisional: recovery
//!    discards them, so nothing is ever acknowledged and then lost, and
//!    nothing half-written is ever replayed (each frame is CRC-framed;
//!    [`record::replay_committed`] stops at the first torn frame and
//!    truncates after the last surviving `Commit`).
//! 3. **Data before name.** A snapshot's bytes are fully written and
//!    fsynced in a temp file before the atomic rename publishes it, and
//!    the directory is fsynced so the rename survives. The WAL is
//!    committed through everything the fuzzy snapshot scan may have
//!    observed *before* the rename — a published snapshot never embeds an
//!    operation that a crash could still revoke.
//!
//! # The recovery contract
//!
//! [`DurableWormhole::open`](durable::DurableWormhole::open) restores
//! **exactly the operations covered by the last surviving `Commit`
//! frame**, in LSN order, on top of the newest snapshot that validates —
//! no more (uncommitted tails are truncated, not resurrected) and no less
//! (acknowledged operations are always covered). A corrupt newest
//! snapshot falls back to the older retained one plus more WAL replay;
//! because every record is a last-write-wins state assignment, replaying
//! from an older position converges to the same state. Only the leaf
//! records are persisted — the meta trie and hash tables are derived
//! structures, rebuilt from the sorted leaf stream on open
//! (`Wormhole::from_sorted`), which is what keeps the log small and the
//! format independent of the in-memory layout.
//!
//! # Crash testing
//!
//! [`storage::FailpointStorage`] implements the same [`storage::WalStorage`]
//! trait as the real file backend but dies at a configurable byte offset
//! and can drop everything not yet fsynced — the recovery fuzz harness
//! sweeps that offset across every byte and record boundary and checks the
//! recovered state against an independent replay of the committed prefix.

pub mod durable;
pub mod record;
pub mod sharded;
pub mod snapshot;
pub mod storage;
pub mod telemetry;
pub mod value;
pub mod wal;

pub use durable::{DurableOptions, DurableWormhole, RecoveryReport, SyncPolicy};
pub use record::WalRecord;
pub use sharded::DurableSharded;
pub use storage::{CrashMode, FailpointHandle, FailpointStorage, FileStorage, WalStorage};
pub use telemetry::DurableMetrics;
pub use value::DurableValue;
pub use wal::Wal;
