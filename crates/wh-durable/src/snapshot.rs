//! Crash-consistent snapshot files.
//!
//! A snapshot is the full key/value image of the index at (or after) a
//! known WAL position, written with the strict publish ordering that
//! makes a crash at *any* point leave either the old snapshot set or the
//! new one — never a half-visible file:
//!
//! 1. stream the records into a **temp file** (`*.tmp`),
//! 2. `fsync` the temp file so every data byte is on the medium,
//! 3. **atomic rename** to the final `snap-<lsn>.snap` name,
//! 4. `fsync` the directory so the rename itself survives.
//!
//! The rename is the publish step — a reader either sees the complete,
//! CRC-verified file under its final name or does not see it at all
//! (ADR-0003's records → links → header-publish discipline, with the
//! directory entry playing the header's role).
//!
//! On-disk layout:
//!
//! ```text
//! magic "WHSNAP01" (8) | covered_lsn u64le |
//! records: (klen u32le | key | vlen u32le | value)* |
//! count u64le | crc u32le
//! ```
//!
//! `crc` is the CRC-32c of every preceding byte, so torn or bit-rotted
//! snapshot files are rejected as a whole and recovery falls back to the
//! next-older one. `covered_lsn` keys WAL truncation: WAL segments whose
//! every record has `lsn <= covered_lsn` are redundant once the snapshot
//! is published.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use wh_hash::crc32c_append;

/// Snapshot file magic (8 bytes, includes a format version).
pub const SNAP_MAGIC: &[u8; 8] = b"WHSNAP01";

/// Buffered snapshot writer that tracks the running CRC.
struct CrcWriter {
    file: io::BufWriter<File>,
    crc: u32,
}

impl CrcWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<()> {
        self.crc = crc32c_append(self.crc, data);
        self.file.write_all(data)
    }
}

/// Streams `records` into a temp file next to `final_path`, then
/// publishes it by fsync + atomic rename + directory fsync. Returns the
/// number of records written.
///
/// `records` may be a live cursor over a concurrently-mutating index: the
/// snapshot is *fuzzy*, and callers restore consistency by replaying the
/// WAL from `covered_lsn + 1` (every record is a last-write-wins state
/// assignment, so replay converges — see [`crate::durable`]).
pub fn write_snapshot(
    final_path: &Path,
    covered_lsn: u64,
    records: impl Iterator<Item = (Vec<u8>, Vec<u8>)>,
) -> io::Result<u64> {
    let (tmp_path, count) = write_snapshot_tmp(final_path, covered_lsn, records)?;
    publish_snapshot(&tmp_path, final_path)?;
    Ok(count)
}

/// The write half of [`write_snapshot`]: streams the records into the
/// temp file and fsyncs it, but does **not** publish. Checkpointing uses
/// the gap between the two halves to commit the WAL through everything
/// the fuzzy scan may have observed *before* the snapshot becomes
/// load-bearing.
pub fn write_snapshot_tmp(
    final_path: &Path,
    covered_lsn: u64,
    records: impl Iterator<Item = (Vec<u8>, Vec<u8>)>,
) -> io::Result<(PathBuf, u64)> {
    let tmp_path = final_path.with_extension("tmp");
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp_path)?;
    let mut writer = CrcWriter {
        file: io::BufWriter::new(file),
        crc: 0,
    };
    writer.write(SNAP_MAGIC)?;
    writer.write(&covered_lsn.to_le_bytes())?;
    let mut count = 0u64;
    for (key, value) in records {
        writer.write(&(key.len() as u32).to_le_bytes())?;
        writer.write(&key)?;
        writer.write(&(value.len() as u32).to_le_bytes())?;
        writer.write(&value)?;
        count += 1;
    }
    writer.write(&count.to_le_bytes())?;
    let crc = writer.crc;
    writer.file.write_all(&crc.to_le_bytes())?;
    let file = writer.file.into_inner()?;
    // Every data byte is durable before the final name can exist.
    file.sync_all()?;
    Ok((tmp_path, count))
}

/// The publish half of [`write_snapshot`]: atomic rename to the final
/// name, then a directory fsync so the rename itself survives. The
/// snapshot must already be fully synced ([`write_snapshot_tmp`]).
pub fn publish_snapshot(tmp_path: &Path, final_path: &Path) -> io::Result<()> {
    fs::rename(tmp_path, final_path)?;
    sync_dir(final_path.parent().unwrap_or(Path::new(".")))
}

/// A fully validated, decoded snapshot.
pub struct SnapshotData {
    /// Every WAL record with `lsn <= covered_lsn` is reflected in (or
    /// superseded by) this snapshot.
    pub covered_lsn: u64,
    /// The key/value image, in the order the cursor emitted it (sorted
    /// for a quiescent index).
    pub records: Vec<(Vec<u8>, Vec<u8>)>,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {msg}"))
}

/// Reads and fully validates a snapshot file. Any structural defect —
/// short file, bad magic, bad CRC, count mismatch — is an error; the
/// caller treats the file as absent and falls back to an older snapshot.
pub fn load_snapshot(path: &Path) -> io::Result<SnapshotData> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    if buf.len() < SNAP_MAGIC.len() + 8 + 8 + 4 {
        return Err(bad("truncated header"));
    }
    if &buf[..8] != SNAP_MAGIC {
        return Err(bad("bad magic"));
    }
    let body_len = buf.len() - 4;
    let crc = u32::from_le_bytes(buf[body_len..].try_into().unwrap());
    if crc32c_append(0, &buf[..body_len]) != crc {
        return Err(bad("bad crc"));
    }
    let count = u64::from_le_bytes(buf[body_len - 8..body_len].try_into().unwrap());
    let covered_lsn = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
    let mut pos = 16usize;
    let records_end = body_len - 8;
    while pos < records_end {
        let read_chunk = |pos: &mut usize| -> io::Result<Vec<u8>> {
            let len_end = pos.checked_add(4).filter(|&e| e <= records_end);
            let len_end = len_end.ok_or_else(|| bad("record overruns body"))?;
            let len = u32::from_le_bytes(buf[*pos..len_end].try_into().unwrap()) as usize;
            let end = len_end.checked_add(len).filter(|&e| e <= records_end);
            let end = end.ok_or_else(|| bad("record overruns body"))?;
            let chunk = buf[len_end..end].to_vec();
            *pos = end;
            Ok(chunk)
        };
        let key = read_chunk(&mut pos)?;
        let value = read_chunk(&mut pos)?;
        records.push((key, value));
    }
    if records.len() as u64 != count {
        return Err(bad("record count mismatch"));
    }
    Ok(SnapshotData {
        covered_lsn,
        records,
    })
}

/// Fsyncs a directory so renames/creates/unlinks inside it are durable.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Lists snapshot files (`snap-*.snap`) in `dir`, newest (highest
/// covered LSN) first. Zero-padded names make the lexical sort numeric.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut snaps: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|e| e == "snap")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("snap-"))
        })
        .collect();
    snaps.sort();
    snaps.reverse();
    Ok(snaps)
}

/// The canonical snapshot file name for a covered LSN.
pub fn snapshot_path(dir: &Path, covered_lsn: u64) -> PathBuf {
    dir.join(format!("snap-{covered_lsn:020}.snap"))
}

/// The covered LSN encoded in a snapshot file's name, if well-formed.
pub fn covered_lsn_of(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wh-durable-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_preserves_records_and_lsn() {
        let dir = tmp_dir("roundtrip");
        let path = snapshot_path(&dir, 42);
        let records = vec![
            (b"alpha".to_vec(), b"1".to_vec()),
            (b"beta".to_vec(), vec![]),
            (vec![], b"empty-key".to_vec()),
        ];
        let count = write_snapshot(&path, 42, records.clone().into_iter()).unwrap();
        assert_eq!(count, 3);
        let snap = load_snapshot(&path).unwrap();
        assert_eq!(snap.covered_lsn, 42);
        assert_eq!(snap.records, records);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_anywhere_is_rejected() {
        let dir = tmp_dir("corrupt");
        let path = snapshot_path(&dir, 7);
        write_snapshot(&path, 7, vec![(b"k".to_vec(), b"v".to_vec())].into_iter()).unwrap();
        let clean = fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x01;
            fs::write(&path, &bad).unwrap();
            assert!(load_snapshot(&path).is_err(), "flip at byte {i} accepted");
        }
        // Truncation at every point is also rejected.
        for cut in 0..clean.len() {
            fs::write(&path, &clean[..cut]).unwrap();
            assert!(
                load_snapshot(&path).is_err(),
                "truncation at {cut} accepted"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn listing_orders_newest_first_and_ignores_tmp() {
        let dir = tmp_dir("list");
        for lsn in [5u64, 999, 70] {
            write_snapshot(&snapshot_path(&dir, lsn), lsn, std::iter::empty()).unwrap();
        }
        fs::write(dir.join("snap-junk.tmp"), b"partial").unwrap();
        let snaps = list_snapshots(&dir).unwrap();
        let lsns: Vec<u64> = snaps
            .iter()
            .map(|p| load_snapshot(p).unwrap().covered_lsn)
            .collect();
        assert_eq!(lsns, vec![999, 70, 5]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
