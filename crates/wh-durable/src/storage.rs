//! Pluggable WAL byte sinks: the real-file backend and a fault-injection
//! backend that can kill the write stream at any byte and drop un-synced
//! data, modelling a crash.
//!
//! The WAL ([`crate::wal`]) is written against [`WalStorage`], so the
//! recovery harness can run the *production* write path against a storage
//! that crashes at a chosen byte offset, then hand the surviving bytes to
//! the *production* recovery path. Nothing in the durability logic is
//! test-only.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

/// An append-only byte sink with an explicit durability barrier.
///
/// Contract: bytes passed to [`append`](WalStorage::append) are *visible*
/// (they will be read back by a clean close/open) but not *durable* until
/// a subsequent [`sync`](WalStorage::sync) returns. A crash may drop any
/// suffix of appended-but-unsynced bytes — and on real hardware may keep
/// an arbitrary prefix of them, which is why the failpoint backend models
/// both ([`CrashMode`]).
pub trait WalStorage: Send {
    /// Appends `data` at the end of the stream.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;
    /// Durability barrier: all previously appended bytes survive a crash
    /// once this returns.
    fn sync(&mut self) -> io::Result<()>;
    /// Current stream length in bytes (appended, not necessarily synced).
    fn len(&self) -> u64;
    /// Whether the stream is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Real-file backend: `append` = `write_all`, `sync` = `fsync`.
pub struct FileStorage {
    file: File,
    len: u64,
}

impl FileStorage {
    /// Opens (creating if absent) `path` for appending and reads its
    /// current length.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Self { file, len })
    }

    /// Reads the entire current contents of `path`.
    pub fn read_all(path: &Path) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }
}

impl WalStorage for FileStorage {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.write_all(data)?;
        self.len += data.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// What happens to appended-but-unsynced bytes at the crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Everything not covered by a completed `sync` is lost — the
    /// pessimistic model (power cut with no disk cache flush).
    DropUnsynced,
    /// Every appended byte up to the kill offset survives — the
    /// optimistic model. Sweeping the kill offset over every byte in this
    /// mode enumerates *every prefix image* of the log, which is the
    /// superset of what any real crash can leave behind.
    KeepAll,
}

/// Shared, inspectable state of a [`FailpointStorage`].
struct FailState {
    buf: Vec<u8>,
    synced: usize,
    /// Byte offset at which the write stream dies; `u64::MAX` = never.
    kill_at: u64,
    dead: bool,
    mode: CrashMode,
    syncs: u64,
}

/// Handle to a failpoint storage's crash controls and surviving image.
/// Clone freely; the test owns one while the WAL owns the storage.
#[derive(Clone)]
pub struct FailpointHandle {
    state: Arc<Mutex<FailState>>,
}

impl FailpointHandle {
    /// The bytes that survive the crash under the configured mode: the
    /// synced prefix for [`CrashMode::DropUnsynced`], every appended byte
    /// for [`CrashMode::KeepAll`].
    pub fn surviving_bytes(&self) -> Vec<u8> {
        let state = self.state.lock();
        match state.mode {
            CrashMode::DropUnsynced => state.buf[..state.synced].to_vec(),
            CrashMode::KeepAll => state.buf.clone(),
        }
    }

    /// Whether the kill offset has been reached.
    pub fn is_dead(&self) -> bool {
        self.state.lock().dead
    }

    /// Total bytes ever appended (including past the synced watermark).
    pub fn appended_len(&self) -> u64 {
        self.state.lock().buf.len() as u64
    }

    /// Number of completed sync barriers.
    pub fn sync_count(&self) -> u64 {
        self.state.lock().syncs
    }
}

/// Fault-injection backend: behaves like a file until the cumulative
/// appended byte count reaches `kill_at`, then truncates that append
/// mid-write and fails every call after it — the moment of the crash.
pub struct FailpointStorage {
    state: Arc<Mutex<FailState>>,
}

impl FailpointStorage {
    /// A storage that dies once `kill_at` total bytes have been appended
    /// (`u64::MAX` for an immortal storage), with `mode` deciding what
    /// the crash leaves behind.
    pub fn new(kill_at: u64, mode: CrashMode) -> (Self, FailpointHandle) {
        let state = Arc::new(Mutex::new(FailState {
            buf: Vec::new(),
            synced: 0,
            kill_at,
            dead: false,
            mode,
            syncs: 0,
        }));
        (
            Self {
                state: Arc::clone(&state),
            },
            FailpointHandle { state },
        )
    }

    fn died() -> io::Error {
        io::Error::other("failpoint: storage crashed")
    }
}

impl WalStorage for FailpointStorage {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock();
        if state.dead {
            return Err(Self::died());
        }
        let room = (state.kill_at as usize).saturating_sub(state.buf.len());
        if data.len() <= room {
            state.buf.extend_from_slice(data);
            Ok(())
        } else {
            // The crash lands mid-append: a prefix of this write reaches
            // the medium, the rest never does.
            state.buf.extend_from_slice(&data[..room]);
            state.dead = true;
            Err(Self::died())
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut state = self.state.lock();
        if state.dead {
            return Err(Self::died());
        }
        state.synced = state.buf.len();
        state.syncs += 1;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.state.lock().buf.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failpoint_kills_mid_append_and_stays_dead() {
        let (mut storage, handle) = FailpointStorage::new(5, CrashMode::KeepAll);
        storage.append(b"abc").unwrap();
        assert!(storage.append(b"defg").is_err());
        assert!(handle.is_dead());
        assert!(storage.append(b"x").is_err());
        assert!(storage.sync().is_err());
        assert_eq!(handle.surviving_bytes(), b"abcde");
    }

    #[test]
    fn drop_unsynced_keeps_only_the_synced_prefix() {
        let (mut storage, handle) = FailpointStorage::new(u64::MAX, CrashMode::DropUnsynced);
        storage.append(b"abc").unwrap();
        storage.sync().unwrap();
        storage.append(b"def").unwrap();
        assert_eq!(handle.surviving_bytes(), b"abc");
        assert_eq!(handle.appended_len(), 6);
        assert_eq!(handle.sync_count(), 1);
    }

    #[test]
    fn file_storage_appends_and_reports_length() {
        let dir = std::env::temp_dir().join(format!("wh-durable-storage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut storage = FileStorage::open(&path).unwrap();
            storage.append(b"hello ").unwrap();
            storage.append(b"world").unwrap();
            storage.sync().unwrap();
            assert_eq!(storage.len(), 11);
        }
        // Re-open sees the existing length and keeps appending.
        let mut storage = FileStorage::open(&path).unwrap();
        assert_eq!(storage.len(), 11);
        storage.append(b"!").unwrap();
        drop(storage);
        assert_eq!(FileStorage::read_all(&path).unwrap(), b"hello world!");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
