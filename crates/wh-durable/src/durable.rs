//! `DurableWormhole`: the concurrent Wormhole index with a write-ahead
//! log and crash-consistent snapshots underneath it.
//!
//! # Directory layout
//!
//! ```text
//! <dir>/wal-<first_lsn>.log    append-only record segments
//! <dir>/snap-<covered>.snap    full-index snapshots
//! <dir>/*.tmp                  in-flight snapshot (never load-bearing)
//! ```
//!
//! File names zero-pad their LSN to twenty digits so lexical order is
//! numeric order.
//!
//! # Write path
//!
//! Every mutation is **logged before it is acknowledged**: the operation's
//! frame goes into the WAL's pending buffer and the in-memory index is
//! updated under the same sequencer lock (so WAL order equals apply order
//! for every key), then — under [`SyncPolicy::Always`] — the call group-
//! commits with its peers and returns only once a synced `Commit` frame
//! covers its LSN. [`SyncPolicy::Manual`] skips the per-op commit and
//! leaves the durability barrier to an explicit
//! [`wal_sync`](index_traits::DurableIndex::wal_sync) — the bulk-load
//! setting.
//!
//! # Checkpoint protocol
//!
//! 1. **Rotate** the WAL: seal the current segment with a `Commit(S)` and
//!    start a new segment named `wal-<S+1>`. `S` becomes the snapshot's
//!    `covered_lsn`.
//! 2. **Fuzzy scan**: stream the whole index through a [`Cursor`] into a
//!    temp file while writers keep running. The scan may capture any
//!    subset of the operations racing it.
//! 3. **Commit through `S_end`** (the highest LSN assigned when the scan
//!    finished): every operation the scan *could* have captured is now
//!    durable in the WAL, so the snapshot never embeds a write that a
//!    crash could un-happen (prefix consistency).
//! 4. **Publish** by atomic rename + directory fsync, then delete older
//!    snapshots and every segment the new snapshot fully covers.
//!
//! Replaying the WAL tail (all records with `lsn > covered_lsn`, in LSN
//! order) over the fuzzy image converges to the exact committed state:
//! every record is a state assignment, so re-applying an operation the
//! scan already captured is idempotent, and the ones it missed are
//! applied — see the recovery proof sketch in the crate docs.
//!
//! # Failure policy
//!
//! The [`ConcurrentOrderedIndex`] methods **panic** if the WAL cannot be
//! written or synced. After a failed fsync the kernel may have dropped
//! the very pages whose write failed while the in-memory index already
//! applied the operation — continuing would acknowledge writes that a
//! crash can silently revert (the "fsyncgate" failure mode). Callers that
//! want to handle storage errors use the `try_*` methods and decide for
//! themselves; the trait surface refuses to guess.

use std::fs::{self, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use index_traits::{ConcurrentOrderedIndex, Cursor, DurableIndex, IndexStats};
use parking_lot::Mutex;
use wormhole::{Wormhole, WormholeConfig};

use crate::record::{self, replay_committed, WalRecord};
use crate::snapshot;
use crate::storage::{FileStorage, WalStorage};
use crate::telemetry::DurableMetrics;
use crate::value::DurableValue;
use crate::wal::Wal;

/// When an acknowledged operation becomes durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Every trait-level mutation group-commits before returning: once a
    /// call returns, its operation survives any crash. The default.
    Always,
    /// Mutations are logged but not committed; durability happens at the
    /// next explicit [`DurableIndex::wal_sync`] (or checkpoint). A crash
    /// loses every operation after the last barrier — the right trade for
    /// bulk loads and caches that tolerate bounded loss.
    Manual,
}

/// Tuning for a [`DurableWormhole`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// In-memory index configuration.
    pub config: WormholeConfig,
    /// When operations are made durable (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// [`DurableIndex::maybe_checkpoint`] triggers once the live WAL
    /// segment outgrows this many bytes.
    pub checkpoint_wal_bytes: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            config: WormholeConfig::default(),
            sync: SyncPolicy::Always,
            checkpoint_wal_bytes: 8 << 20,
        }
    }
}

/// What [`DurableWormhole::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `covered_lsn` of the snapshot the index was rebuilt from (0 when
    /// recovery started from an empty image).
    pub snapshot_covered_lsn: u64,
    /// Records restored from that snapshot.
    pub snapshot_records: u64,
    /// Snapshot files rejected as corrupt before one validated.
    pub skipped_snapshots: usize,
    /// WAL segments read during replay.
    pub segments_scanned: usize,
    /// Committed operations (re)applied from the WAL tail.
    pub replayed_operations: u64,
    /// Highest committed LSN — the recovered state is exactly the
    /// operations with `lsn <=` this value.
    pub committed_lsn: u64,
    /// Bytes cut from the last segment's torn/uncommitted tail.
    pub truncated_bytes: u64,
}

fn segment_path(dir: &Path, first_lsn: u64) -> PathBuf {
    dir.join(format!("wal-{first_lsn:020}.log"))
}

/// WAL segments in `dir`, ascending by first LSN (parsed from the name).
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments: Vec<(u64, PathBuf)> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter_map(|path| {
            let name = path.file_name()?.to_str()?;
            let first_lsn = name
                .strip_prefix("wal-")?
                .strip_suffix(".log")?
                .parse::<u64>()
                .ok()?;
            Some((first_lsn, path))
        })
        .collect();
    segments.sort();
    Ok(segments)
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("recovery: {msg}"))
}

/// A crash-durable [`Wormhole`] (see the [module docs](self) for the
/// write path, checkpoint protocol, and failure policy).
pub struct DurableWormhole<V: DurableValue> {
    index: Wormhole<V>,
    wal: Wal,
    dir: PathBuf,
    options: DurableOptions,
    /// Serialises checkpoints; `maybe_checkpoint` try-locks it so policy
    /// ticks never pile up behind a running checkpoint.
    checkpoint_lock: Mutex<()>,
    recovery: RecoveryReport,
}

impl<V: DurableValue> DurableWormhole<V> {
    /// Opens (or creates) the index persisted in `dir` with default
    /// options: newest valid snapshot + committed WAL tail, exactly the
    /// acknowledged state.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with(dir, DurableOptions::default())
    }

    /// [`DurableWormhole::open`] with explicit options.
    pub fn open_with(dir: impl AsRef<Path>, options: DurableOptions) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut report = RecoveryReport::default();

        // A leftover `.tmp` is an unpublished snapshot: by the publish
        // ordering it was never load-bearing, so it is plain garbage.
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                fs::remove_file(&path)?;
            }
        }

        // Newest snapshot that validates end to end wins; corrupt ones
        // (torn by a crash mid-publish on a non-atomic filesystem, or
        // bit-rotted) are skipped, falling back to older images plus a
        // longer WAL replay.
        let mut base: Option<snapshot::SnapshotData> = None;
        for snap in snapshot::list_snapshots(&dir)? {
            match snapshot::load_snapshot(&snap) {
                Ok(data) => {
                    base = Some(data);
                    break;
                }
                Err(_) => report.skipped_snapshots += 1,
            }
        }
        let covered = base.as_ref().map_or(0, |snap| snap.covered_lsn);
        report.snapshot_covered_lsn = covered;

        // Rebuild the in-memory index from the snapshot's ordered record
        // stream — leaves are packed directly and the MetaTrieHT is
        // derived from them (`from_sorted`), the paper's observation that
        // only the leaf list needs to be durable.
        let index = match base {
            Some(snap) => {
                report.snapshot_records = snap.records.len() as u64;
                let mut pairs = Vec::with_capacity(snap.records.len());
                for (key, value) in snap.records {
                    let value =
                        V::decode(&value).ok_or_else(|| corrupt("undecodable snapshot value"))?;
                    pairs.push((key, value));
                }
                Wormhole::from_sorted(options.config, pairs)
            }
            None => Wormhole::with_config(options.config),
        };

        // Replay the committed prefix of every segment, oldest first,
        // skipping operations the snapshot already covers.
        let segments = list_segments(&dir)?;
        report.segments_scanned = segments.len();
        let mut committed_max = covered;
        let mut decode_failure = false;
        for (i, (_, path)) in segments.iter().enumerate() {
            let bytes = FileStorage::read_all(path)?;
            let (valid_end, seg_committed, _) = replay_committed(&bytes, |rec| {
                if rec.lsn() <= covered {
                    return;
                }
                match rec {
                    WalRecord::Put { key, value, .. } => match V::decode(value) {
                        Some(value) => {
                            index.set(key, value);
                        }
                        None => decode_failure = true,
                    },
                    WalRecord::Delete { key, .. } => {
                        index.del(key);
                    }
                    WalRecord::DeleteRange { lo, hi, .. } => {
                        index.delete_range(lo, hi);
                    }
                    WalRecord::Commit { .. } => unreachable!("commits are not applied"),
                }
                report.replayed_operations += 1;
            });
            committed_max = committed_max.max(seg_committed);
            // Only the newest segment can carry a torn or uncommitted
            // tail (rotation seals every older one): cut it off so the
            // log ends at the last committed frame before appending.
            if i == segments.len() - 1 && (valid_end as u64) < bytes.len() as u64 {
                report.truncated_bytes = bytes.len() as u64 - valid_end as u64;
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(valid_end as u64)?;
                file.sync_all()?;
            }
        }
        if decode_failure {
            return Err(corrupt("undecodable value in a committed WAL record"));
        }
        report.committed_lsn = committed_max;

        let next_lsn = committed_max + 1;
        let storage: Box<dyn WalStorage> = match segments.last() {
            Some((_, path)) => Box::new(FileStorage::open(path)?),
            None => {
                let storage = FileStorage::open(&segment_path(&dir, next_lsn))?;
                snapshot::sync_dir(&dir)?;
                Box::new(storage)
            }
        };
        Ok(Self {
            index,
            wal: Wal::new(storage, next_lsn),
            dir,
            options,
            checkpoint_lock: Mutex::new(()),
            recovery: report,
        })
    }

    /// What recovery found when this handle was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The persistence directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Storage sync barriers performed since open (group commit makes
    /// this far smaller than the operation count under concurrency).
    /// Reads the same telemetry cell as [`DurableMetrics::fsyncs`].
    pub fn sync_count(&self) -> u64 {
        self.wal.sync_count()
    }

    /// The durability metrics (fsync count/latency, group-commit batch
    /// factor, WAL bytes, checkpoint durations).
    pub fn metrics(&self) -> &DurableMetrics {
        self.wal.metrics()
    }

    /// Registers the durability metrics into `registry` under
    /// `<prefix>_…` names (prefix must match `[a-z0-9_]+`).
    pub fn register_metrics(&self, registry: &wh_telemetry::Registry, prefix: &str) {
        self.metrics().register_into(registry, prefix);
    }

    /// Logs, applies, and (under [`SyncPolicy::Always`]) commits an
    /// insert/overwrite. The fallible form of
    /// [`ConcurrentOrderedIndex::set`].
    pub fn try_set(&self, key: &[u8], value: V) -> io::Result<Option<V>> {
        let mut encoded = Vec::new();
        value.encode_into(&mut encoded);
        let (lsn, old) = self.wal.log(
            |buf, lsn| record::encode_put(buf, lsn, key, &encoded),
            || self.index.set(key, value),
        );
        self.commit_policy(lsn)?;
        Ok(old)
    }

    /// Fallible [`ConcurrentOrderedIndex::del`].
    pub fn try_del(&self, key: &[u8]) -> io::Result<Option<V>> {
        let (lsn, old) = self.wal.log(
            |buf, lsn| record::encode_delete(buf, lsn, key),
            || self.index.del(key),
        );
        self.commit_policy(lsn)?;
        Ok(old)
    }

    /// Fallible [`ConcurrentOrderedIndex::delete_range`]. The whole range
    /// removal is one WAL record, so replay re-executes it as a unit.
    pub fn try_delete_range(&self, lo: &[u8], hi: &[u8]) -> io::Result<usize> {
        let (lsn, removed) = self.wal.log(
            |buf, lsn| record::encode_delete_range(buf, lsn, lo, hi),
            || self.index.delete_range(lo, hi),
        );
        self.commit_policy(lsn)?;
        Ok(removed)
    }

    fn commit_policy(&self, lsn: u64) -> io::Result<()> {
        match self.options.sync {
            SyncPolicy::Always => self.wal.commit(lsn).map(|_| ()),
            SyncPolicy::Manual => Ok(()),
        }
    }

    fn checkpoint_locked(&self) -> io::Result<u64> {
        let timing = wh_telemetry::start_timing();
        // 1. Rotate: seal the live segment; the snapshot will cover
        //    exactly the sealed prefix, and every racing operation lands
        //    in the new segment (named after its first LSN).
        let dir = self.dir.clone();
        let covered = self.wal.rotate_with(move |sealed| {
            let storage = FileStorage::open(&segment_path(&dir, sealed + 1))?;
            snapshot::sync_dir(&dir)?;
            Ok(Box::new(storage) as Box<dyn WalStorage>)
        })?;

        // 2. Fuzzy scan into the temp file — writers keep running.
        let final_path = snapshot::snapshot_path(&self.dir, covered);
        let mut cursor = self.index.scan(b"");
        let mut encoded = Vec::new();
        let (tmp_path, _count) = snapshot::write_snapshot_tmp(
            &final_path,
            covered,
            std::iter::from_fn(|| {
                cursor.next().map(|(key, value)| {
                    encoded.clear();
                    value.encode_into(&mut encoded);
                    (key.to_vec(), encoded.clone())
                })
            }),
        )?;
        drop(cursor);

        // 3. Make the WAL durable through everything the scan could have
        //    observed, BEFORE the snapshot becomes load-bearing: a fuzzy
        //    image may embed a racing write, and that write must not be
        //    revocable by a crash once the snapshot is published.
        let scan_end = self.wal.last_assigned_lsn();
        self.wal.commit(scan_end)?;

        // 4. Publish (rename + dir fsync), then GC what it superseded.
        snapshot::publish_snapshot(&tmp_path, &final_path)?;
        self.collect_garbage()?;
        self.metrics().checkpoint_ns.record_elapsed(timing);
        Ok(covered)
    }

    /// Prunes what the new snapshot supersedes, keeping one generation of
    /// redundancy: the two newest snapshots survive, and a WAL segment is
    /// deleted only when the *older* retained snapshot covers it (its
    /// successor segment starts at or below that snapshot's
    /// `covered + 1`). If the newest snapshot is later found corrupt,
    /// recovery still has the older image plus every segment since it.
    fn collect_garbage(&self) -> io::Result<()> {
        const RETAIN_SNAPSHOTS: usize = 2;
        let snaps = snapshot::list_snapshots(&self.dir)?;
        for snap in snaps.iter().skip(RETAIN_SNAPSHOTS) {
            fs::remove_file(snap)?;
        }
        let retained = &snaps[..snaps.len().min(RETAIN_SNAPSHOTS)];
        let Some(floor) = retained
            .last()
            .and_then(|oldest| snapshot::covered_lsn_of(oldest))
        else {
            return snapshot::sync_dir(&self.dir);
        };
        let segments = list_segments(&self.dir)?;
        for pair in segments.windows(2) {
            if pair[1].0 <= floor + 1 {
                fs::remove_file(&pair[0].1)?;
            }
        }
        snapshot::sync_dir(&self.dir)
    }
}

impl<V: DurableValue> ConcurrentOrderedIndex<V> for DurableWormhole<V> {
    fn name(&self) -> &'static str {
        "wormhole-durable"
    }

    fn get(&self, key: &[u8]) -> Option<V> {
        self.index.get(key)
    }

    /// Panics if the operation cannot be made durable — see the module
    /// docs' failure policy.
    fn set(&self, key: &[u8], value: V) -> Option<V> {
        self.try_set(key, value)
            .unwrap_or_else(|e| panic!("wh-durable: set could not be made durable: {e}"))
    }

    /// Panics if the operation cannot be made durable — see the module
    /// docs' failure policy.
    fn del(&self, key: &[u8]) -> Option<V> {
        self.try_del(key)
            .unwrap_or_else(|e| panic!("wh-durable: del could not be made durable: {e}"))
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    /// Panics if the operation cannot be made durable — see the module
    /// docs' failure policy.
    fn delete_range(&self, lo: &[u8], hi: &[u8]) -> usize {
        self.try_delete_range(lo, hi)
            .unwrap_or_else(|e| panic!("wh-durable: delete_range could not be made durable: {e}"))
    }

    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)> {
        self.index.range_from(start, count)
    }

    fn scan<'a>(&'a self, start: &[u8]) -> Cursor<'a, V>
    where
        V: Clone + 'a,
    {
        self.index.scan(start)
    }

    fn stats(&self) -> IndexStats {
        self.index.stats()
    }
}

impl<V: DurableValue> DurableIndex<V> for DurableWormhole<V> {
    fn wal_sync(&self) -> io::Result<u64> {
        self.wal.sync_all()
    }

    fn durable_watermark(&self) -> u64 {
        self.wal.durable_lsn()
    }

    fn checkpoint(&self) -> io::Result<u64> {
        let _guard = self.checkpoint_lock.lock();
        self.checkpoint_locked()
    }

    fn maybe_checkpoint(&self) -> io::Result<Option<u64>> {
        if self.wal.current_segment_len() < self.options.checkpoint_wal_bytes {
            return Ok(None);
        }
        match self.checkpoint_lock.try_lock() {
            Some(_guard) => self.checkpoint_locked().map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wh-durable-idx-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny() -> DurableOptions {
        DurableOptions {
            config: WormholeConfig::optimized().with_leaf_capacity(8),
            ..DurableOptions::default()
        }
    }

    #[test]
    fn telemetry_tracks_fsyncs_wal_bytes_and_checkpoints() {
        let dir = test_dir("telemetry");
        let idx: DurableWormhole<u64> = DurableWormhole::open_with(&dir, tiny()).unwrap();
        for i in 0..100u64 {
            idx.set(format!("t-{i:04}").as_bytes(), i);
        }
        let m = idx.metrics();
        // Under SyncPolicy::Always each single-threaded set leads its own
        // commit: the fsync counter is the same cell `sync_count` reads,
        // and every batch sealed exactly one op.
        assert_eq!(m.fsyncs.get(), idx.sync_count());
        assert_eq!(m.fsyncs.get(), 100);
        assert!(m.wal_bytes.get() > 0);
        // Histograms vanish under `telemetry-off` / runtime disable;
        // counters above stay live regardless.
        if wh_telemetry::enabled() {
            let batches = m.commit_batch_ops.snapshot();
            assert_eq!(batches.count(), 100);
            assert_eq!(batches.sum, 100);
            assert_eq!(m.fsync_ns.snapshot().count(), 100);
        }

        assert_eq!(m.checkpoint_ns.snapshot().count(), 0);
        idx.checkpoint().unwrap();
        let expected_checkpoints = if wh_telemetry::enabled() { 1 } else { 0 };
        assert_eq!(m.checkpoint_ns.snapshot().count(), expected_checkpoints);

        let registry = wh_telemetry::Registry::new();
        idx.register_metrics(&registry, "wh_durable");
        registry.lint().expect("names well-formed and unique");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("wh_durable_fsyncs_total"), idx.sync_count());
        if wh_telemetry::enabled() {
            assert!(snap.render().contains("wh_durable_fsync_ns_bucket"));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_open_set_reopen_recovers_everything() {
        let dir = test_dir("reopen");
        {
            let idx: DurableWormhole<u64> = DurableWormhole::open_with(&dir, tiny()).unwrap();
            for i in 0..500u64 {
                idx.set(format!("key-{i:04}").as_bytes(), i);
            }
            idx.del(b"key-0123");
            idx.delete_range(b"key-0200", b"key-0300");
            assert_eq!(idx.len(), 399);
        } // dropped without checkpoint: recovery is pure WAL replay
        let idx: DurableWormhole<u64> = DurableWormhole::open_with(&dir, tiny()).unwrap();
        assert_eq!(idx.len(), 399);
        assert_eq!(idx.get(b"key-0000"), Some(0));
        assert_eq!(idx.get(b"key-0123"), None);
        assert_eq!(idx.get(b"key-0250"), None);
        assert_eq!(idx.get(b"key-0300"), Some(300));
        assert_eq!(idx.recovery().replayed_operations, 502);
        assert_eq!(idx.recovery().snapshot_records, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_prunes_wal_and_reopen_uses_snapshot() {
        let dir = test_dir("checkpoint");
        {
            let idx: DurableWormhole<u64> = DurableWormhole::open_with(&dir, tiny()).unwrap();
            for i in 0..300u64 {
                idx.set(format!("ck-{i:04}").as_bytes(), i);
            }
            let covered = idx.checkpoint().unwrap();
            assert_eq!(covered, 300);
            // Post-checkpoint writes live only in the WAL tail.
            for i in 300..350u64 {
                idx.set(format!("ck-{i:04}").as_bytes(), i);
            }
            // The pre-checkpoint segment is gone, the covered snapshot is
            // the only one.
            assert_eq!(list_segments(&dir).unwrap().len(), 1);
            assert_eq!(snapshot::list_snapshots(&dir).unwrap().len(), 1);
        }
        let idx: DurableWormhole<u64> = DurableWormhole::open_with(&dir, tiny()).unwrap();
        assert_eq!(idx.len(), 350);
        assert_eq!(idx.recovery().snapshot_records, 300);
        assert_eq!(idx.recovery().replayed_operations, 50);
        for i in 0..350u64 {
            assert_eq!(idx.get(format!("ck-{i:04}").as_bytes()), Some(i));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_under_concurrent_writers_loses_nothing() {
        let dir = test_dir("fuzzy");
        let idx: DurableWormhole<u64> = DurableWormhole::open_with(&dir, tiny()).unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for w in 0..3u64 {
                let idx = &idx;
                let stop = &stop;
                scope.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        idx.set(format!("w{w}-{i:05}").as_bytes(), i);
                        if i > 0 && i.is_multiple_of(7) {
                            idx.del(format!("w{w}-{:05}", i - 1).as_bytes());
                        }
                        i += 1;
                    }
                });
            }
            let idx = &idx;
            let stop = &stop;
            scope.spawn(move || {
                for _ in 0..5 {
                    idx.checkpoint().unwrap();
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
        let expected: Vec<(Vec<u8>, u64)> = idx.range_from(b"", usize::MAX);
        drop(idx);
        let reopened: DurableWormhole<u64> = DurableWormhole::open_with(&dir, tiny()).unwrap();
        assert_eq!(reopened.range_from(b"", usize::MAX), expected);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn maybe_checkpoint_honors_the_byte_threshold() {
        let dir = test_dir("maybe");
        let options = DurableOptions {
            checkpoint_wal_bytes: 2_000,
            ..tiny()
        };
        let idx: DurableWormhole<u64> = DurableWormhole::open_with(&dir, options).unwrap();
        assert_eq!(idx.maybe_checkpoint().unwrap(), None, "empty log: no-op");
        for i in 0..200u64 {
            idx.set(format!("mc-{i:04}").as_bytes(), i);
        }
        assert!(idx.maybe_checkpoint().unwrap().is_some(), "log over budget");
        assert_eq!(idx.maybe_checkpoint().unwrap(), None, "fresh segment again");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manual_sync_policy_defers_durability_to_the_barrier() {
        let dir = test_dir("manual");
        let options = DurableOptions {
            sync: SyncPolicy::Manual,
            ..tiny()
        };
        {
            let idx: DurableWormhole<u64> = DurableWormhole::open_with(&dir, options).unwrap();
            for i in 0..100u64 {
                idx.set(format!("m-{i:03}").as_bytes(), i);
            }
            assert_eq!(idx.durable_watermark(), 0, "nothing committed yet");
            assert_eq!(idx.wal_sync().unwrap(), 100);
            assert_eq!(idx.durable_watermark(), 100);
            for i in 100..150u64 {
                idx.set(format!("m-{i:03}").as_bytes(), i);
            }
            // The tail after the barrier is logged but uncommitted; a
            // crash (simulated by dropping without sync) discards it.
        }
        let idx: DurableWormhole<u64> = DurableWormhole::open_with(&dir, options).unwrap();
        assert_eq!(idx.len(), 100, "unsynced tail must not survive");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older_image_plus_wal() {
        let dir = test_dir("fallback");
        {
            let idx: DurableWormhole<u64> = DurableWormhole::open_with(&dir, tiny()).unwrap();
            for i in 0..50u64 {
                idx.set(format!("fb-{i:03}").as_bytes(), i);
            }
            idx.checkpoint().unwrap();
            for i in 50..80u64 {
                idx.set(format!("fb-{i:03}").as_bytes(), i);
            }
            idx.checkpoint().unwrap();
        }
        // Both snapshots are retained (one generation of redundancy), and
        // segment pruning is keyed to the OLDER one, so corrupting the
        // newest snapshot must leave a complete recovery path: older
        // snapshot + every segment since it.
        let snaps = snapshot::list_snapshots(&dir).unwrap();
        assert_eq!(snaps.len(), 2);
        let newest = &snaps[0];
        let mut bytes = fs::read(newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(newest, &bytes).unwrap();
        let idx: DurableWormhole<u64> = DurableWormhole::open_with(&dir, tiny()).unwrap();
        assert_eq!(idx.recovery().skipped_snapshots, 1);
        assert_eq!(idx.recovery().snapshot_covered_lsn, 50);
        assert_eq!(idx.len(), 80);
        for i in 0..80u64 {
            assert_eq!(idx.get(format!("fb-{i:03}").as_bytes()), Some(i));
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
