//! Telemetry for the durability layer: fsync count and latency, the
//! group-commit batch factor, WAL byte volume, and checkpoint durations.
//!
//! One [`DurableMetrics`] is owned per WAL (so per [`DurableWormhole`]
//! shard); [`DurableSharded`] registers each shard's set under a
//! `…_shard<i>_…` prefix. The fsync counter is the same cell
//! [`DurableWormhole::sync_count`] reads — one source of truth.
//!
//! [`DurableWormhole`]: crate::DurableWormhole
//! [`DurableWormhole::sync_count`]: crate::DurableWormhole::sync_count
//! [`DurableSharded`]: crate::DurableSharded

use wh_telemetry::{Counter, Histogram, Registry};

/// Durability-path metrics for one WAL stream.
#[derive(Clone, Debug, Default)]
pub struct DurableMetrics {
    /// Storage sync barriers performed (group commit keeps this far below
    /// the committed-operation count under concurrency).
    pub fsyncs: Counter,
    /// Wall time of each commit's append+sync, in nanoseconds.
    pub fsync_ns: Histogram,
    /// Operations made durable per sync — the group-commit batch factor.
    pub commit_batch_ops: Histogram,
    /// Bytes appended to WAL storage (frames plus commit seals).
    pub wal_bytes: Counter,
    /// Wall time of each full checkpoint (rotate, fuzzy scan, publish,
    /// GC), in nanoseconds.
    pub checkpoint_ns: Histogram,
}

impl DurableMetrics {
    /// Registers every metric under `<prefix>_…` names (prefix must match
    /// `[a-z0-9_]+`, e.g. `wh_durable`).
    pub fn register_into(&self, registry: &Registry, prefix: &str) {
        registry.register_counter(&format!("{prefix}_fsyncs_total"), &self.fsyncs);
        registry.register_histogram(&format!("{prefix}_fsync_ns"), &self.fsync_ns);
        registry.register_histogram(
            &format!("{prefix}_commit_batch_ops"),
            &self.commit_batch_ops,
        );
        registry.register_counter(&format!("{prefix}_wal_bytes_total"), &self.wal_bytes);
        registry.register_histogram(&format!("{prefix}_checkpoint_ns"), &self.checkpoint_ns);
    }
}
