//! The write-ahead log: a single append-only record stream with group
//! commit.
//!
//! Two locks split the hot path so the expensive part is shared:
//!
//! - The **sequencer** ([`Wal::log`]) assigns LSNs, encodes frames into a
//!   pending buffer, and applies the operation to the in-memory index —
//!   all under one short mutex, which makes WAL order and apply order
//!   identical for every key this log covers.
//! - The **committer** ([`Wal::commit`]) makes a prefix durable. The
//!   holder of the file lock steals the *entire* pending buffer (its own
//!   frames plus everything other writers logged since the last steal),
//!   seals it with one `Commit` frame, and pays one append+fsync for the
//!   whole batch. Writers that arrive while a sync is in flight either
//!   find their LSN already durable when they get the lock (free ride) or
//!   become the next batch's leader — fsyncs are batched across writers
//!   with no condvar and no dedicated thread.
//!
//! An operation is *acknowledged* only when `commit` returns with the
//! durable watermark at or above its LSN; recovery
//! ([`crate::record::replay_committed`]) applies exactly the operations
//! covered by a surviving `Commit` frame, so the set of acknowledged
//! operations is always a prefix of the log and is never lost.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::record;
use crate::storage::WalStorage;
use crate::telemetry::DurableMetrics;

struct WalSeq {
    /// Frames encoded but not yet handed to storage.
    pending: Vec<u8>,
    next_lsn: u64,
}

struct WalFile {
    storage: Box<dyn WalStorage>,
}

/// A group-commit write-ahead log over one [`WalStorage`] stream.
pub struct Wal {
    seq: Mutex<WalSeq>,
    file: Mutex<WalFile>,
    /// Highest LSN sealed by a synced `Commit` frame.
    durable_lsn: AtomicU64,
    metrics: DurableMetrics,
}

impl Wal {
    /// Wraps `storage`, with `next_lsn` the first LSN this log will
    /// assign (1 for a fresh log; `committed + 1` after recovery). All
    /// bytes already in `storage` are assumed durable.
    pub fn new(storage: Box<dyn WalStorage>, next_lsn: u64) -> Self {
        Self::with_metrics(storage, next_lsn, DurableMetrics::default())
    }

    /// [`Wal::new`] recording into caller-supplied metrics cells.
    pub fn with_metrics(
        storage: Box<dyn WalStorage>,
        next_lsn: u64,
        metrics: DurableMetrics,
    ) -> Self {
        Self {
            seq: Mutex::new(WalSeq {
                pending: Vec::new(),
                next_lsn,
            }),
            file: Mutex::new(WalFile { storage }),
            durable_lsn: AtomicU64::new(next_lsn.saturating_sub(1)),
            metrics,
        }
    }

    /// The durability metrics this log records into (fsync count/latency,
    /// group-commit batch factor, WAL bytes).
    pub fn metrics(&self) -> &DurableMetrics {
        &self.metrics
    }

    /// Logs one operation and applies it to the in-memory index, both
    /// under the sequencer lock: `encode` writes the operation's frame
    /// for the LSN it is handed, `apply` mutates the index. Returns the
    /// assigned LSN and `apply`'s result. The operation is *not* durable
    /// until a later [`commit`](Wal::commit) covers the LSN.
    pub fn log<R>(
        &self,
        encode: impl FnOnce(&mut Vec<u8>, u64),
        apply: impl FnOnce() -> R,
    ) -> (u64, R) {
        let mut seq = self.seq.lock();
        let lsn = seq.next_lsn;
        seq.next_lsn += 1;
        encode(&mut seq.pending, lsn);
        let result = apply();
        (lsn, result)
    }

    /// Makes every operation with LSN `<= lsn` durable, group-committing
    /// with concurrent callers. Returns the durable watermark, which is
    /// `>= lsn` on success.
    pub fn commit(&self, lsn: u64) -> io::Result<u64> {
        let durable = self.durable_lsn.load(Ordering::Acquire);
        if durable >= lsn {
            return Ok(durable);
        }
        let mut file = self.file.lock();
        // A batch leader may have covered us while we waited for the lock.
        let durable = self.durable_lsn.load(Ordering::Acquire);
        if durable >= lsn {
            return Ok(durable);
        }
        // We are the leader: steal the whole pending buffer and seal it.
        let (mut batch, upto) = {
            let mut seq = self.seq.lock();
            (std::mem::take(&mut seq.pending), seq.next_lsn - 1)
        };
        record::encode_commit(&mut batch, upto);
        let timing = wh_telemetry::start_timing();
        file.storage.append(&batch)?;
        file.storage.sync()?;
        self.metrics.fsync_ns.record_elapsed(timing);
        self.metrics.fsyncs.inc();
        self.metrics.wal_bytes.add(batch.len() as u64);
        self.metrics.commit_batch_ops.record(upto - durable);
        self.durable_lsn.store(upto, Ordering::Release);
        Ok(upto)
    }

    /// Makes everything logged so far durable (a full barrier).
    pub fn sync_all(&self) -> io::Result<u64> {
        self.commit(self.last_assigned_lsn())
    }

    /// Seals the current stream (flushing the pending buffer with a final
    /// `Commit`) and swaps in `new_storage` for subsequent batches.
    /// Returns the sealed-through LSN — every operation at or below it is
    /// durable in the *old* stream; every later one goes to the new.
    /// Used by checkpointing to rotate segments.
    pub fn rotate(&self, new_storage: Box<dyn WalStorage>) -> io::Result<u64> {
        self.rotate_with(|_| Ok(new_storage))
    }

    /// [`Wal::rotate`] with the replacement storage built *after* the seal,
    /// from the sealed-through LSN — checkpointing names the new segment
    /// file after the first LSN it will contain (`sealed + 1`). If `make`
    /// fails, the old storage stays in place; the extra seal it absorbed is
    /// harmless (a log may contain any number of `Commit` frames).
    pub fn rotate_with(
        &self,
        make: impl FnOnce(u64) -> io::Result<Box<dyn WalStorage>>,
    ) -> io::Result<u64> {
        let mut file = self.file.lock();
        let (mut batch, upto) = {
            let mut seq = self.seq.lock();
            (std::mem::take(&mut seq.pending), seq.next_lsn - 1)
        };
        record::encode_commit(&mut batch, upto);
        let covered = upto - self.durable_lsn.load(Ordering::Acquire);
        let timing = wh_telemetry::start_timing();
        file.storage.append(&batch)?;
        file.storage.sync()?;
        self.metrics.fsync_ns.record_elapsed(timing);
        self.metrics.fsyncs.inc();
        self.metrics.wal_bytes.add(batch.len() as u64);
        self.metrics.commit_batch_ops.record(covered);
        self.durable_lsn.store(upto, Ordering::Release);
        file.storage = make(upto)?;
        Ok(upto)
    }

    /// Bytes in the current (post-rotation) storage stream — the
    /// checkpoint policy's log-growth signal.
    pub fn current_segment_len(&self) -> u64 {
        self.file.lock().storage.len()
    }

    /// Highest LSN sealed durable so far.
    pub fn durable_lsn(&self) -> u64 {
        self.durable_lsn.load(Ordering::Acquire)
    }

    /// Highest LSN handed out by the sequencer.
    pub fn last_assigned_lsn(&self) -> u64 {
        self.seq.lock().next_lsn - 1
    }

    /// Number of storage sync barriers performed — with group commit this
    /// is typically far below the number of committed operations. Reads
    /// the same cell [`DurableMetrics::fsyncs`] exposes.
    pub fn sync_count(&self) -> u64 {
        self.metrics.fsyncs.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{replay_committed, WalRecord};
    use crate::storage::{CrashMode, FailpointStorage};
    use std::sync::Arc;

    fn put(wal: &Wal, key: &[u8], value: &[u8]) -> u64 {
        let (lsn, ()) = wal.log(|buf, lsn| record::encode_put(buf, lsn, key, value), || ());
        lsn
    }

    #[test]
    fn commit_seals_everything_logged_before_it() {
        let (storage, handle) = FailpointStorage::new(u64::MAX, CrashMode::DropUnsynced);
        let wal = Wal::new(Box::new(storage), 1);
        put(&wal, b"a", b"1");
        let lsn_b = put(&wal, b"b", b"2");
        assert_eq!(wal.commit(lsn_b).unwrap(), 2);
        assert_eq!(wal.durable_lsn(), 2);
        let mut applied = Vec::new();
        let (_, committed, _) = replay_committed(&handle.surviving_bytes(), |r| {
            if let WalRecord::Put { key, .. } = r {
                applied.push(key.clone());
            }
        });
        assert_eq!(committed, 2);
        assert_eq!(applied, vec![b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn group_commit_batches_fsyncs_across_writers() {
        let (storage, handle) = FailpointStorage::new(u64::MAX, CrashMode::DropUnsynced);
        let wal = Arc::new(Wal::new(Box::new(storage), 1));
        let writers = 8;
        let per_writer = 200;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let wal = Arc::clone(&wal);
                scope.spawn(move || {
                    for i in 0..per_writer {
                        let key = format!("w{w}-{i:04}");
                        let lsn = put(&wal, key.as_bytes(), b"v");
                        let durable = wal.commit(lsn).unwrap();
                        assert!(durable >= lsn);
                    }
                });
            }
        });
        let total = (writers * per_writer) as u64;
        assert_eq!(wal.durable_lsn(), total);
        // The whole point: far fewer syncs than committed operations
        // (each sync covers a batch; with 8 contending writers at least
        // some batching must occur).
        assert!(handle.sync_count() <= total);
        let (_, committed, max) = replay_committed(&handle.surviving_bytes(), |_| {});
        assert_eq!(committed, total);
        assert_eq!(max, total);
    }

    #[test]
    fn rotate_seals_old_stream_and_directs_new_writes() {
        let (s1, h1) = FailpointStorage::new(u64::MAX, CrashMode::DropUnsynced);
        let (s2, h2) = FailpointStorage::new(u64::MAX, CrashMode::DropUnsynced);
        let wal = Wal::new(Box::new(s1), 1);
        put(&wal, b"old", b"1");
        let sealed = wal.rotate(Box::new(s2)).unwrap();
        assert_eq!(sealed, 1);
        put(&wal, b"new", b"2");
        wal.sync_all().unwrap();
        let (_, committed_old, _) = replay_committed(&h1.surviving_bytes(), |_| {});
        assert_eq!(committed_old, 1);
        let mut new_keys = Vec::new();
        let (_, committed_new, _) = replay_committed(&h2.surviving_bytes(), |r| {
            if let WalRecord::Put { key, .. } = r {
                new_keys.push(key.clone());
            }
        });
        assert_eq!(committed_new, 2);
        assert_eq!(new_keys, vec![b"new".to_vec()]);
    }

    #[test]
    fn commit_error_surfaces_and_watermark_is_unchanged() {
        let (storage, _handle) = FailpointStorage::new(4, CrashMode::DropUnsynced);
        let wal = Wal::new(Box::new(storage), 1);
        let lsn = put(&wal, b"doomed-key-longer-than-four-bytes", b"v");
        assert!(wal.commit(lsn).is_err());
        assert_eq!(wal.durable_lsn(), 0);
    }
}
