//! The B+ tree implementation.

use index_traits::{IndexStats, OrderedIndex};

/// Null link for the leaf list.
const NIL: usize = usize::MAX;

/// A split bubbling up from a child insert: the separator key and the new
/// right sibling's arena index.
type SplitUp = (Box<[u8]>, usize);

/// A B+ tree node: either an internal routing node or a leaf holding items.
enum Node<V> {
    Internal {
        /// Separator keys; `children[i]` holds keys `< keys[i]`,
        /// `children[i + 1]` holds keys `>= keys[i]`.
        keys: Vec<Box<[u8]>>,
        children: Vec<usize>,
    },
    Leaf {
        /// Sorted key/value items.
        items: Vec<(Box<[u8]>, V)>,
        /// Next leaf in key order (`NIL` at the tail).
        next: usize,
        /// Previous leaf in key order (`NIL` at the head).
        prev: usize,
    },
}

/// An STX-style in-memory B+ tree over byte-string keys.
pub struct BPlusTree<V> {
    arena: Vec<Option<Node<V>>>,
    free: Vec<usize>,
    root: usize,
    fanout: usize,
    len: usize,
    key_bytes: usize,
}

impl<V> Default for BPlusTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> BPlusTree<V> {
    /// Creates an empty tree with the paper's default fanout of 128.
    pub fn new() -> Self {
        Self::with_fanout(crate::DEFAULT_FANOUT)
    }

    /// Creates an empty tree with the given fanout (minimum 4).
    pub fn with_fanout(fanout: usize) -> Self {
        let fanout = fanout.max(4);
        let mut tree = Self {
            arena: Vec::new(),
            free: Vec::new(),
            root: 0,
            fanout,
            len: 0,
            key_bytes: 0,
        };
        tree.root = tree.alloc(Node::Leaf {
            items: Vec::new(),
            next: NIL,
            prev: NIL,
        });
        tree
    }

    /// The configured fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Current tree height (1 = a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut idx = self.root;
        while let Node::Internal { children, .. } = self.node(idx) {
            idx = children[0];
            h += 1;
        }
        h
    }

    fn max_leaf_items(&self) -> usize {
        self.fanout
    }
    fn min_leaf_items(&self) -> usize {
        self.fanout / 2
    }
    fn max_internal_keys(&self) -> usize {
        self.fanout - 1
    }
    fn min_internal_children(&self) -> usize {
        self.fanout.div_ceil(2)
    }

    fn alloc(&mut self, node: Node<V>) -> usize {
        if let Some(idx) = self.free.pop() {
            self.arena[idx] = Some(node);
            idx
        } else {
            self.arena.push(Some(node));
            self.arena.len() - 1
        }
    }

    fn release(&mut self, idx: usize) -> Node<V> {
        let node = self.arena[idx].take().expect("live node");
        self.free.push(idx);
        node
    }

    fn node(&self, idx: usize) -> &Node<V> {
        self.arena[idx].as_ref().expect("live node")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node<V> {
        self.arena[idx].as_mut().expect("live node")
    }

    /// Finds the leaf that would contain `key`.
    fn find_leaf(&self, key: &[u8]) -> usize {
        let mut idx = self.root;
        loop {
            match self.node(idx) {
                Node::Internal { keys, children } => {
                    let slot = keys.partition_point(|sep| sep.as_ref() <= key);
                    idx = children[slot];
                }
                Node::Leaf { .. } => return idx,
            }
        }
    }

    /// Recursive insertion; returns (old value, split info).
    fn insert_rec(&mut self, idx: usize, key: &[u8], value: V) -> (Option<V>, Option<SplitUp>) {
        if matches!(self.node(idx), Node::Leaf { .. }) {
            let (old, inserted) = {
                let Node::Leaf { items, .. } = self.node_mut(idx) else {
                    unreachable!()
                };
                match items.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
                    Ok(pos) => (Some(std::mem::replace(&mut items[pos].1, value)), false),
                    Err(pos) => {
                        items.insert(pos, (key.to_vec().into_boxed_slice(), value));
                        (None, true)
                    }
                }
            };
            if inserted {
                self.len += 1;
                self.key_bytes += key.len();
                if self.leaf_len(idx) > self.max_leaf_items() {
                    return (None, Some(self.split_leaf(idx)));
                }
            }
            return (old, None);
        }
        // Internal node: descend into the covering child.
        let (slot, child) = match self.node(idx) {
            Node::Internal { keys, children } => {
                let slot = keys.partition_point(|sep| sep.as_ref() <= key);
                (slot, children[slot])
            }
            Node::Leaf { .. } => unreachable!(),
        };
        let (old, split) = self.insert_rec(child, key, value);
        if let Some((sep, new_child)) = split {
            let overflow = {
                let Node::Internal { keys, children } = self.node_mut(idx) else {
                    unreachable!()
                };
                keys.insert(slot, sep);
                children.insert(slot + 1, new_child);
                keys.len() > self.max_internal_keys()
            };
            if overflow {
                return (old, Some(self.split_internal(idx)));
            }
        }
        (old, None)
    }

    fn leaf_len(&self, idx: usize) -> usize {
        match self.node(idx) {
            Node::Leaf { items, .. } => items.len(),
            Node::Internal { .. } => unreachable!("leaf_len on internal node"),
        }
    }

    /// Splits an over-full leaf, returning the separator key and the new
    /// right sibling's index.
    fn split_leaf(&mut self, idx: usize) -> (Box<[u8]>, usize) {
        let (right_items, old_next) = match self.node_mut(idx) {
            Node::Leaf { items, next, .. } => {
                let mid = items.len() / 2;
                (items.split_off(mid), *next)
            }
            Node::Internal { .. } => unreachable!(),
        };
        let sep = right_items[0].0.clone();
        let new_idx = self.alloc(Node::Leaf {
            items: right_items,
            next: old_next,
            prev: idx,
        });
        if let Node::Leaf { next, .. } = self.node_mut(idx) {
            *next = new_idx;
        }
        if old_next != NIL {
            if let Node::Leaf { prev, .. } = self.node_mut(old_next) {
                *prev = new_idx;
            }
        }
        (sep, new_idx)
    }

    /// Splits an over-full internal node, returning the push-up key and the
    /// new right sibling's index.
    fn split_internal(&mut self, idx: usize) -> (Box<[u8]>, usize) {
        let (push_up, right_keys, right_children) = match self.node_mut(idx) {
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid + 1);
                let push_up = keys.pop().expect("mid key");
                let right_children = children.split_off(mid + 1);
                (push_up, right_keys, right_children)
            }
            Node::Leaf { .. } => unreachable!(),
        };
        let new_idx = self.alloc(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        (push_up, new_idx)
    }

    /// Recursive deletion; returns the removed value (if any). Rebalancing of
    /// the child at `slot` is handled by the parent after the call returns.
    fn delete_rec(&mut self, idx: usize, key: &[u8]) -> Option<V> {
        if matches!(self.node(idx), Node::Leaf { .. }) {
            let removed = {
                let Node::Leaf { items, .. } = self.node_mut(idx) else {
                    unreachable!()
                };
                match items.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
                    Ok(pos) => Some(items.remove(pos)),
                    Err(_) => None,
                }
            };
            return removed.map(|(k, v)| {
                self.len -= 1;
                self.key_bytes -= k.len();
                v
            });
        }
        let (slot, child) = match self.node(idx) {
            Node::Internal { keys, children } => {
                let slot = keys.partition_point(|sep| sep.as_ref() <= key);
                (slot, children[slot])
            }
            Node::Leaf { .. } => unreachable!(),
        };
        let removed = self.delete_rec(child, key);
        if removed.is_some() {
            self.rebalance_child(idx, slot);
        }
        removed
    }

    /// Returns `true` when the node at `idx` is below its minimum occupancy.
    fn is_underfull(&self, idx: usize) -> bool {
        match self.node(idx) {
            Node::Leaf { items, .. } => items.len() < self.min_leaf_items(),
            Node::Internal { children, .. } => children.len() < self.min_internal_children(),
        }
    }

    /// Rebalances `children[slot]` of the internal node `parent` if it has
    /// become under-full: borrow from a sibling when possible, merge
    /// otherwise.
    fn rebalance_child(&mut self, parent: usize, slot: usize) {
        let (child, nchildren) = match self.node(parent) {
            Node::Internal { children, .. } => (children[slot], children.len()),
            Node::Leaf { .. } => unreachable!(),
        };
        if !self.is_underfull(child) {
            return;
        }
        // Prefer borrowing from the left sibling, then the right, then merge.
        if slot > 0 && self.can_lend(self.sibling(parent, slot - 1)) {
            self.borrow_from_left(parent, slot);
        } else if slot + 1 < nchildren && self.can_lend(self.sibling(parent, slot + 1)) {
            self.borrow_from_right(parent, slot);
        } else if slot > 0 {
            self.merge_children(parent, slot - 1);
        } else if slot + 1 < nchildren {
            self.merge_children(parent, slot);
        }
    }

    fn sibling(&self, parent: usize, slot: usize) -> usize {
        match self.node(parent) {
            Node::Internal { children, .. } => children[slot],
            Node::Leaf { .. } => unreachable!(),
        }
    }

    fn can_lend(&self, idx: usize) -> bool {
        match self.node(idx) {
            Node::Leaf { items, .. } => items.len() > self.min_leaf_items(),
            Node::Internal { children, .. } => children.len() > self.min_internal_children(),
        }
    }

    fn borrow_from_left(&mut self, parent: usize, slot: usize) {
        let (left, child) = match self.node(parent) {
            Node::Internal { children, .. } => (children[slot - 1], children[slot]),
            Node::Leaf { .. } => unreachable!(),
        };
        match self.release(left) {
            Node::Leaf {
                mut items,
                next,
                prev,
            } => {
                // Move the left leaf's last item to the front of the child.
                let moved = items.pop().expect("left leaf not empty");
                let new_sep = moved.0.clone();
                self.arena[left] = Some(Node::Leaf { items, next, prev });
                self.free.retain(|&i| i != left);
                if let Node::Leaf { items, .. } = self.node_mut(child) {
                    items.insert(0, moved);
                }
                if let Node::Internal { keys, .. } = self.node_mut(parent) {
                    keys[slot - 1] = new_sep;
                }
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let moved_child = children.pop().expect("left internal not empty");
                let moved_key = keys.pop().expect("left internal not empty");
                self.arena[left] = Some(Node::Internal { keys, children });
                self.free.retain(|&i| i != left);
                let old_sep = if let Node::Internal { keys, .. } = self.node_mut(parent) {
                    std::mem::replace(&mut keys[slot - 1], moved_key)
                } else {
                    unreachable!()
                };
                if let Node::Internal { keys, children } = self.node_mut(child) {
                    keys.insert(0, old_sep);
                    children.insert(0, moved_child);
                }
            }
        }
    }

    fn borrow_from_right(&mut self, parent: usize, slot: usize) {
        let (child, right) = match self.node(parent) {
            Node::Internal { children, .. } => (children[slot], children[slot + 1]),
            Node::Leaf { .. } => unreachable!(),
        };
        match self.release(right) {
            Node::Leaf {
                mut items,
                next,
                prev,
            } => {
                let moved = items.remove(0);
                let new_sep = items[0].0.clone();
                self.arena[right] = Some(Node::Leaf { items, next, prev });
                self.free.retain(|&i| i != right);
                if let Node::Leaf { items, .. } = self.node_mut(child) {
                    items.push(moved);
                }
                if let Node::Internal { keys, .. } = self.node_mut(parent) {
                    keys[slot] = new_sep;
                }
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let moved_child = children.remove(0);
                let moved_key = keys.remove(0);
                self.arena[right] = Some(Node::Internal { keys, children });
                self.free.retain(|&i| i != right);
                let old_sep = if let Node::Internal { keys, .. } = self.node_mut(parent) {
                    std::mem::replace(&mut keys[slot], moved_key)
                } else {
                    unreachable!()
                };
                if let Node::Internal { keys, children } = self.node_mut(child) {
                    keys.push(old_sep);
                    children.push(moved_child);
                }
            }
        }
    }

    /// Merges `children[slot + 1]` into `children[slot]` of `parent`.
    fn merge_children(&mut self, parent: usize, slot: usize) {
        let (left, right, sep) = match self.node(parent) {
            Node::Internal { children, keys, .. } => {
                (children[slot], children[slot + 1], keys[slot].clone())
            }
            Node::Leaf { .. } => unreachable!(),
        };
        let right_node = self.release(right);
        match right_node {
            Node::Leaf { items, next, .. } => {
                if let Node::Leaf {
                    items: left_items,
                    next: left_next,
                    ..
                } = self.node_mut(left)
                {
                    left_items.extend(items);
                    *left_next = next;
                }
                if next != NIL {
                    if let Node::Leaf { prev, .. } = self.node_mut(next) {
                        *prev = left;
                    }
                }
            }
            Node::Internal { keys, children } => {
                if let Node::Internal {
                    keys: lk,
                    children: lc,
                } = self.node_mut(left)
                {
                    lk.push(sep);
                    lk.extend(keys);
                    lc.extend(children);
                }
            }
        }
        if let Node::Internal { keys, children } = self.node_mut(parent) {
            keys.remove(slot);
            children.remove(slot + 1);
        }
    }

    /// Collapses the root when it has become trivial after deletions.
    fn shrink_root(&mut self) {
        loop {
            let new_root = match self.node(self.root) {
                Node::Internal { children, .. } if children.len() == 1 => children[0],
                _ => return,
            };
            self.release(self.root);
            self.root = new_root;
        }
    }

    /// Returns a reference to the value stored under `key`, if present.
    pub fn get_ref(&self, key: &[u8]) -> Option<&V> {
        let leaf = self.find_leaf(key);
        match self.node(leaf) {
            Node::Leaf { items, .. } => items
                .binary_search_by(|(k, _)| k.as_ref().cmp(key))
                .ok()
                .map(|pos| &items[pos].1),
            Node::Internal { .. } => unreachable!(),
        }
    }

    /// Returns a mutable reference to the value stored under `key`.
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut V> {
        let leaf = self.find_leaf(key);
        match self.node_mut(leaf) {
            Node::Leaf { items, .. } => {
                match items.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
                    Ok(pos) => Some(&mut items[pos].1),
                    Err(_) => None,
                }
            }
            Node::Internal { .. } => unreachable!(),
        }
    }

    /// Inserts or overwrites `key`, returning the previous value if any.
    ///
    /// Unlike [`OrderedIndex::set`], this inherent method places no bound on
    /// `V`, which lets other structures (e.g. the Masstree baseline) nest
    /// non-cloneable values inside a `BPlusTree`.
    pub fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        let root = self.root;
        let (old, split) = self.insert_rec(root, key, value);
        if let Some((sep, new_child)) = split {
            let new_root = self.alloc(Node::Internal {
                keys: vec![sep],
                children: vec![root, new_child],
            });
            self.root = new_root;
        }
        old
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let root = self.root;
        let removed = self.delete_rec(root, key);
        if removed.is_some() {
            self.shrink_root();
        }
        removed
    }

    /// Number of stored keys.
    pub fn key_count(&self) -> usize {
        self.len
    }

    /// Structure-only memory accounting (used by composite indexes that embed
    /// B+ trees, such as the Masstree baseline).
    pub fn structure_stats(&self) -> IndexStats {
        let mut structure = 0usize;
        let mut sep_bytes = 0usize;
        for node in self.arena.iter().flatten() {
            match node {
                Node::Internal { keys, children } => {
                    structure += std::mem::size_of::<Node<V>>()
                        + children.len() * std::mem::size_of::<usize>()
                        + keys.len() * std::mem::size_of::<Box<[u8]>>();
                    sep_bytes += keys.iter().map(|k| k.len()).sum::<usize>();
                }
                Node::Leaf { items, .. } => {
                    structure += std::mem::size_of::<Node<V>>()
                        + items.len() * std::mem::size_of::<(Box<[u8]>, V)>();
                }
            }
        }
        IndexStats {
            keys: self.len,
            structure_bytes: structure + sep_bytes,
            key_bytes: self.key_bytes,
            value_bytes: self.len * std::mem::size_of::<V>(),
        }
    }

    /// Iterates key/value pairs in ascending order from the first key
    /// `>= start`.
    pub fn iter_from<'a>(&'a self, start: &[u8]) -> impl Iterator<Item = (&'a [u8], &'a V)> + 'a {
        let mut leaf = self.find_leaf(start);
        let mut pos = match self.node(leaf) {
            Node::Leaf { items, .. } => items.partition_point(|(k, _)| k.as_ref() < start),
            Node::Internal { .. } => 0,
        };
        std::iter::from_fn(move || loop {
            if leaf == NIL {
                return None;
            }
            match self.node(leaf) {
                Node::Leaf { items, next, .. } => {
                    if pos < items.len() {
                        let (k, v) = &items[pos];
                        pos += 1;
                        return Some((k.as_ref(), v));
                    }
                    leaf = *next;
                    pos = 0;
                }
                Node::Internal { .. } => unreachable!("leaf list contains internal node"),
            }
        })
    }

    /// Validates structural invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) {
        self.check_node(self.root, None, None);
    }

    fn check_node(&self, idx: usize, lower: Option<&[u8]>, upper: Option<&[u8]>) {
        match self.node(idx) {
            Node::Leaf { items, .. } => {
                for w in items.windows(2) {
                    assert!(w[0].0 < w[1].0, "leaf items out of order");
                }
                for (k, _) in items {
                    if let Some(lo) = lower {
                        assert!(k.as_ref() >= lo, "leaf key below lower bound");
                    }
                    if let Some(hi) = upper {
                        assert!(k.as_ref() < hi, "leaf key above upper bound");
                    }
                }
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1, "fan-out mismatch");
                for w in keys.windows(2) {
                    assert!(w[0] < w[1], "separator keys out of order");
                }
                for (i, &child) in children.iter().enumerate() {
                    let lo = if i == 0 {
                        lower
                    } else {
                        Some(keys[i - 1].as_ref())
                    };
                    let hi = if i == keys.len() {
                        upper
                    } else {
                        Some(keys[i].as_ref())
                    };
                    self.check_node(child, lo, hi);
                }
            }
        }
    }
}

impl<V: Clone> OrderedIndex<V> for BPlusTree<V> {
    fn name(&self) -> &'static str {
        "b+tree"
    }

    fn get(&self, key: &[u8]) -> Option<V> {
        self.get_ref(key).cloned()
    }

    fn set(&mut self, key: &[u8], value: V) -> Option<V> {
        self.insert(key, value)
    }

    fn del(&mut self, key: &[u8]) -> Option<V> {
        self.remove(key)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)> {
        self.iter_from(start)
            .take(count)
            .map(|(k, v)| (k.to_vec(), v.clone()))
            .collect()
    }

    fn stats(&self) -> IndexStats {
        self.structure_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn names() -> Vec<&'static str> {
        vec![
            "Aaron", "Abbe", "Andrew", "Austin", "Denice", "Jacob", "James", "Jason", "John",
            "Joseph", "Julian", "Justin",
        ]
    }

    #[test]
    fn empty_tree() {
        let mut t: BPlusTree<u64> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(b"x"), None);
        assert_eq!(t.del(b"x"), None);
        assert!(t.range_from(b"", 5).is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn paper_example_keys() {
        let mut t = BPlusTree::with_fanout(4);
        for (i, k) in names().iter().enumerate() {
            t.set(k.as_bytes(), i as u64);
        }
        t.check_invariants();
        assert_eq!(t.len(), 12);
        assert!(t.height() > 1, "fanout 4 with 12 keys must split");
        for (i, k) in names().iter().enumerate() {
            assert_eq!(t.get(k.as_bytes()), Some(i as u64), "{k}");
        }
        let range = t.range_from(b"Brown", 3);
        let keys: Vec<_> = range
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, vec!["Denice", "Jacob", "James"]);
    }

    #[test]
    fn overwrite_returns_old_value() {
        let mut t = BPlusTree::new();
        assert_eq!(t.set(b"k", 1u64), None);
        assert_eq!(t.set(b"k", 2), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sequential_inserts_and_deletes_keep_invariants() {
        let mut t = BPlusTree::with_fanout(8);
        for i in 0..2000u64 {
            let key = format!("{i:08}");
            t.set(key.as_bytes(), i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 2000);
        // Delete every other key.
        for i in (0..2000u64).step_by(2) {
            let key = format!("{i:08}");
            assert_eq!(t.del(key.as_bytes()), Some(i));
        }
        t.check_invariants();
        assert_eq!(t.len(), 1000);
        for i in 0..2000u64 {
            let key = format!("{i:08}");
            let expect = if i % 2 == 0 { None } else { Some(i) };
            assert_eq!(t.get(key.as_bytes()), expect);
        }
    }

    #[test]
    fn random_order_inserts() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut keys: Vec<u64> = (0..5000).collect();
        keys.shuffle(&mut rng);
        let mut t = BPlusTree::with_fanout(16);
        for &i in &keys {
            t.set(format!("{i:08}").as_bytes(), i);
        }
        t.check_invariants();
        let scan = t.range_from(b"", usize::MAX);
        assert_eq!(scan.len(), 5000);
        for (i, (k, v)) in scan.iter().enumerate() {
            assert_eq!(k, format!("{i:08}").as_bytes());
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn delete_down_to_empty() {
        let mut t = BPlusTree::with_fanout(4);
        for i in 0..200u64 {
            t.set(format!("{i:04}").as_bytes(), i);
        }
        for i in 0..200u64 {
            assert_eq!(t.del(format!("{i:04}").as_bytes(),), Some(i));
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        // Tree is usable again after being emptied.
        t.set(b"again", 1);
        assert_eq!(t.get(b"again"), Some(1));
    }

    #[test]
    fn leaf_list_stays_linked_after_merges() {
        let mut t = BPlusTree::with_fanout(4);
        for i in 0..64u64 {
            t.set(format!("{i:03}").as_bytes(), i);
        }
        // Remove a whole region to force leaf merges.
        for i in 10..50u64 {
            t.del(format!("{i:03}").as_bytes());
        }
        t.check_invariants();
        let scan: Vec<u64> = t
            .range_from(b"", usize::MAX)
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let expect: Vec<u64> = (0..10).chain(50..64).collect();
        assert_eq!(scan, expect);
    }

    #[test]
    fn stats_reflect_contents() {
        let mut t = BPlusTree::new();
        for i in 0..100u64 {
            t.set(format!("key-{i:05}").as_bytes(), i);
        }
        let s = t.stats();
        assert_eq!(s.keys, 100);
        assert_eq!(s.key_bytes, 100 * 9);
        assert!(s.structure_bytes > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_matches_btreemap_model(ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..10), any::<u64>(), any::<bool>()), 1..300)) {
            let mut t = BPlusTree::with_fanout(6);
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            for (key, value, is_delete) in ops {
                if is_delete {
                    prop_assert_eq!(t.del(&key), model.remove(&key));
                } else {
                    prop_assert_eq!(t.set(&key, value), model.insert(key.clone(), value));
                }
            }
            t.check_invariants();
            prop_assert_eq!(t.len(), model.len());
            let scan = t.range_from(b"", usize::MAX);
            let expect: Vec<_> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
            prop_assert_eq!(scan, expect);
        }

        #[test]
        fn prop_range_from_matches_model(keys in proptest::collection::btree_set(
            proptest::collection::vec(any::<u8>(), 1..8), 1..120),
            start in proptest::collection::vec(any::<u8>(), 0..8),
            count in 0usize..30) {
            let mut t = BPlusTree::with_fanout(5);
            for (i, k) in keys.iter().enumerate() {
                t.set(k, i as u64);
            }
            let got: Vec<Vec<u8>> = t.range_from(&start, count).into_iter().map(|(k, _)| k).collect();
            let expect: Vec<Vec<u8>> = keys.iter().filter(|k| k.as_slice() >= start.as_slice())
                .take(count).cloned().collect();
            prop_assert_eq!(got, expect);
        }
    }
}
