//! An in-memory B+ tree modelled on the STX B+-tree used as the "B+ tree"
//! baseline throughout the Wormhole evaluation.
//!
//! All keys live in leaf nodes; internal nodes store separator keys only.
//! Leaves are linked into a sorted list (the paper's *LeafList*) so that
//! range queries are a lookup followed by a linear scan. The default fanout
//! is 128, the value the paper reports as best on its testbed.

pub mod tree;

pub use tree::BPlusTree;

/// Default fanout (maximum children per internal node and maximum keys per
/// leaf), matching the paper's configuration of the STX B+-tree.
pub const DEFAULT_FANOUT: usize = 128;
